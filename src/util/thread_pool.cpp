#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/metrics.hpp"

namespace hpcfail::util {

namespace {

std::int64_t steady_us() noexcept {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Task-latency bucket edges in microseconds: 100us .. ~10s, powers of ~4.
const std::vector<double>& latency_bounds() {
  static const std::vector<double> bounds = {100,    400,     1600,    6400,
                                             25600,  102400,  409600,  1638400,
                                             6553600, 10000000};
  return bounds;
}

}  // namespace

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

const ThreadPool::Instruments& ThreadPool::bound_instruments() {
  // Generation first, registry second: an install between the two loads
  // leaves a current registry under a stale generation, so the next call
  // simply rebinds.  The reverse order could cache a dead registry's
  // instruments under the new generation.
  const std::uint64_t generation = metrics_generation();
  if (generation != bound_metrics_generation_) {
    bound_metrics_generation_ = generation;
    MetricsRegistry* reg = metrics();
    if (reg == nullptr) {
      instruments_ = Instruments{};
    } else {
      instruments_.queue_depth = &reg->gauge("hpcfail.pool.queue_depth");
      instruments_.tasks_completed = &reg->counter("hpcfail.pool.tasks_completed");
      instruments_.task_latency_us =
          &reg->histogram("hpcfail.pool.task_latency_us", latency_bounds());
      instruments_.worker_busy_us.assign(workers_.empty() ? 1 : workers_.size(),
                                         nullptr);
      for (std::size_t i = 0; i < instruments_.worker_busy_us.size(); ++i) {
        instruments_.worker_busy_us[i] =
            &reg->counter("hpcfail.pool.worker" + std::to_string(i) + ".busy_us");
      }
    }
  }
  return instruments_;
}

void ThreadPool::enqueue(std::function<void()> fn) {
  {
    std::lock_guard lock(mutex_);
    const Instruments& m = bound_instruments();
    if (m.queue_depth != nullptr) {
      m.queue_depth->add(1);
      // Wrap so completion observes enqueue -> done latency.  The wrapper
      // holds raw instrument pointers: the registry outlives the drain (see
      // header contract), and the instruments are atomics, so recording
      // outside the pool mutex is safe.
      queue_.emplace_back([fn = std::move(fn), enq_us = steady_us(),
                           latency = m.task_latency_us, done = m.tasks_completed] {
        fn();
        latency->observe(static_cast<double>(steady_us() - enq_us));
        done->increment();
      });
    } else {
      queue_.push_back(std::move(fn));
    }
  }
  cv_.notify_one();
}

void ThreadPool::worker_loop(std::size_t worker_index) {
  for (;;) {
    std::function<void()> task;
    Counter* busy = nullptr;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
      const Instruments& m = bound_instruments();
      if (m.queue_depth != nullptr) {
        m.queue_depth->add(-1);
        busy = m.worker_busy_us[std::min(worker_index,
                                         m.worker_busy_us.size() - 1)];
      }
    }
    if (busy != nullptr) {
      const std::int64_t t0 = steady_us();
      task();
      busy->add(static_cast<std::uint64_t>(std::max<std::int64_t>(0, steady_us() - t0)));
    } else {
      task();
    }
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  // hpcfail-lint: allow(capture-lifetime) -- parallel_for_ranges joins every chunk before returning
  parallel_for_ranges(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // ~4 chunks per worker amortizes imbalance without flooding the queue.
  const std::size_t target_chunks = std::max<std::size_t>(1, workers_.size() * 4);
  const std::size_t chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    // hpcfail-lint: allow(capture-lifetime) -- the join loop below waits out every chunk; &fn is pinned until then
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Wait for EVERY chunk before rethrowing: the tasks capture `fn` by
  // reference, so returning while chunks are still queued would leave them
  // calling through a dangling reference.  First exception (in chunk order)
  // wins, the rest are swallowed deliberately.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hpcfail::util
