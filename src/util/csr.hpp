// Compressed-sparse-row index: one flat `entries` array holding runs of
// values grouped by a dense uint32 key, with `offsets[k] .. offsets[k+1]`
// delimiting key k's run.  For id-keyed secondary indexes (ids come from
// real machine topologies, so the key space is small and dense) this
// replaces a hash map of per-key vectors with two exact-sized allocations:
// lookups are one bounds check + two loads, and there is no per-key heap
// block or growth slack.
//
// Building is the caller's job (count into offsets[key + 1], prefix-sum,
// then fill entries through a cursor copy of offsets) because callers fuse
// the counting passes of several indexes; see LogStore::build_indexes and
// JobTable::finalize.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace hpcfail::util {

template <class T>
struct CsrIndex {
  std::vector<std::uint32_t> offsets;  ///< size max_key + 2; empty when no entries
  std::vector<T> entries;              ///< values grouped by key

  /// The run for `key`; empty for keys never filled (including keys past
  /// the built range, so no caller needs to pre-check bounds).
  [[nodiscard]] std::span<const T> of(std::uint32_t key) const noexcept {
    if (key + 1 >= offsets.size()) return {};
    return std::span<const T>(entries).subspan(offsets[key],
                                               offsets[key + 1] - offsets[key]);
  }
};

}  // namespace hpcfail::util
