// Fixture: production code using exactly the registered fault sites.
#include "util/fault.hpp"

bool read_chunk() {
  if (HPCFAIL_FAULT_SITE("ingest.read.badbit")) return false;
  if (HPCFAIL_FAULT_SITE("store.append_batch.bad_alloc")) return false;
  return true;
}
