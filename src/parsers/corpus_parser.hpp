// Whole-corpus ingestion: raw text of all sources -> finalized LogStore +
// JobTable.  Non-scheduler sources are parsed in parallel on the shared
// thread pool (each shard parses a contiguous line range); the scheduler
// log is parsed sequentially because its lines mutate the JobTable in
// order.  Malformed or irrelevant lines are counted, never fatal.
#pragma once

#include <cstddef>

#include "jobs/job_table.hpp"
#include "loggen/corpus.hpp"
#include "logmodel/log_store.hpp"
#include "platform/topology.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail::parsers {

struct ParsedCorpus {
  platform::SystemConfig system;
  platform::Topology topology;
  logmodel::LogStore store;
  jobs::JobTable jobs;
  util::TimePoint begin;  ///< log window start, from the manifest
  int days = 0;           ///< log window length, from the manifest
  std::size_t total_lines = 0;
  std::size_t parsed_records = 0;
  std::size_t skipped_lines = 0;  ///< malformed or not fault-relevant
};

/// Parses every source of the corpus. When `pool` is null the shared
/// default pool is used; pass a 1-thread pool for fully serial parsing.
[[nodiscard]] ParsedCorpus parse_corpus(const loggen::Corpus& corpus,
                                        util::ThreadPool* pool = nullptr);

}  // namespace hpcfail::parsers
