#include "util/chunked_reader.hpp"

#include <algorithm>

namespace hpcfail::util {

ChunkedLineReader::ChunkedLineReader(std::istream& in, std::size_t chunk_bytes)
    : in_(in), chunk_bytes_(std::max<std::size_t>(1, chunk_bytes)) {}

bool ChunkedLineReader::next(std::string& chunk) {
  chunk.clear();
  if (eof_ && carry_.empty()) return false;

  chunk.swap(carry_);
  // Grow until the chunk holds at least one complete line and is at least
  // chunk_bytes_ long (or the stream ends).  Reading never splits a line:
  // everything after the last '\n' is carried into the next call.
  while (!eof_ && (chunk.size() < chunk_bytes_ || chunk.find('\n') == std::string::npos)) {
    const std::size_t old_size = chunk.size();
    chunk.resize(old_size + chunk_bytes_);
    in_.read(chunk.data() + old_size, static_cast<std::streamsize>(chunk_bytes_));
    const auto got = static_cast<std::size_t>(in_.gcount());
    chunk.resize(old_size + got);
    if (got < chunk_bytes_) eof_ = true;
  }

  if (!eof_) {
    const std::size_t last_nl = chunk.rfind('\n');
    // The loop above guarantees a '\n' exists when !eof_.
    carry_.assign(chunk, last_nl + 1, chunk.size() - last_nl - 1);
    chunk.resize(last_nl + 1);
  }
  bytes_read_ += chunk.size();
  return !chunk.empty();
}

}  // namespace hpcfail::util
