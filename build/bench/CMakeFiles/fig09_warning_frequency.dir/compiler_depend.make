# Empty compiler generated dependencies file for fig09_warning_frequency.
# This may be replaced when dependencies are built.
