// Fixture: format version bumped without updating FORMATS.md.
#pragma once

#include <cstdint>

inline constexpr std::uint32_t kSnapshotFormatVersion = 2;
