file(REMOVE_RECURSE
  "libhpcfail_platform.a"
)
