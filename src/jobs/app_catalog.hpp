// Catalog of synthetic scientific applications with per-app risk profiles.
//
// The paper's Observations 6-8 hinge on per-application behaviour: some apps
// exhaust memory, some trigger Lustre contention, most are benign.  The
// catalog encodes those propensities so the fault simulator can make
// failures application-conditional (and therefore spatially scattered but
// temporally clustered under a shared job id).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/rng.hpp"

namespace hpcfail::jobs {

struct AppProfile {
  std::string name;
  double popularity = 1.0;        ///< sampling weight
  double mem_hunger_gb = 16.0;    ///< typical memory request per node
  double p_oom = 0.0;             ///< P(job drives nodes out of memory)
  double p_fs_bug = 0.0;          ///< P(job triggers a Lustre/DVS bug chain)
  double p_kernel_bug = 0.0;      ///< P(job trips a kernel bug / invalid opcode)
  double p_abnormal_exit = 0.0;   ///< P(NHC observes an abnormal app exit)
  double p_nonzero_exit = 0.02;   ///< benign non-zero exits (bad input etc.)
  double p_config_error = 0.01;   ///< wall-time / mem-limit configuration error
};

class AppCatalog {
 public:
  /// Default catalog: a handful of benign solvers plus a small set of
  /// risky applications, calibrated so system-level failure shares land in
  /// the paper's ranges (Figs 15/16, Observation 6).
  static AppCatalog standard();

  explicit AppCatalog(std::vector<AppProfile> apps);

  [[nodiscard]] const AppProfile& sample(util::Rng& rng) const;
  [[nodiscard]] const AppProfile& at(std::size_t i) const { return apps_[i]; }
  [[nodiscard]] std::size_t size() const noexcept { return apps_.size(); }
  [[nodiscard]] std::span<const AppProfile> apps() const noexcept { return apps_; }

  /// Looks an app up by name; nullptr when absent.
  [[nodiscard]] const AppProfile* find(std::string_view name) const noexcept;

 private:
  std::vector<AppProfile> apps_;
  std::vector<double> weights_;
};

}  // namespace hpcfail::jobs
