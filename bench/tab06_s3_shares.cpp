// Section III-F / Table VI: S3 layer shares and the findings checklist.
// Paper: for S3 over 4 months hardware faults contribute 37% of failures,
// software 32%, applications 31%; 27% involve memory exhaustion.  The
// findings of Table VI are verified against the measured statistics.
#include "bench_common.hpp"
#include "stats/summary.hpp"
#include "core/benign_faults.hpp"
#include "core/external_correlator.hpp"
#include "core/leadtime.hpp"
#include "core/report.hpp"
#include "core/temporal.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Table VI / S3 shares (120 days)");

  const auto p = bench::run_system(platform::SystemName::S3, 120, 2106);
  const auto shares = core::layer_shares(p.failures);

  util::TextTable table({"Layer", "measured", "paper"});
  table.row().cell("Hardware").pct(shares.hardware).cell("37%");
  table.row().cell("Software").pct(shares.software).cell("32%");
  table.row().cell("Application").pct(shares.application).cell("31%");
  table.row().cell("Memory exhaustion (overlapping)").pct(shares.memory_exhaustion).cell(
      "27%");
  std::cout << table.render() << '\n';

  check.in_range("hardware share (paper 37%)", shares.hardware, 0.29, 0.45);
  check.in_range("software share (paper 32%)", shares.software, 0.24, 0.40);
  check.in_range("application share (paper 31%)", shares.application, 0.23, 0.39);
  check.in_range("memory-exhaustion involvement (paper 27%)", shares.memory_exhaustion,
                 0.12, 0.32);

  // --- Table VI findings checklist, each verified from measurements ---
  const core::TemporalAnalyzer temporal(p.failures);
  const auto days = temporal.dominant_cause_per_day(p.sim.config.begin, 120);
  stats::StreamingStats dom;
  for (const auto& d : days) dom.add(d.dominant_share());
  check.greater("F1: daily failures share root causes (dominant share > 50%)", dom.mean(),
                0.5);

  const core::ExternalCorrelator correlator(p.parsed.store, p.failures);
  const auto nhf = correlator.correspondence(logmodel::EventType::NodeHeartbeatFault,
                                             p.sim.config.begin, p.sim.config.end());
  check.greater("F2: blade/cabinet health weakly correlated (NHF < 80% match)", 0.8,
                nhf.fraction());

  const core::LeadTimeAnalyzer leadtime(p.parsed.store);
  const auto summary = leadtime.summarize(p.failures);
  check.greater("F3: fail-slow symptoms enable lead-time gains (factor > 3)",
                summary.enhancement_factor(), 3.0);
  check.greater("F4: prediction ineffective for app-triggered causes "
                "(non-enhanceable majority)",
                1.0 - summary.enhanceable_fraction(), 0.5);
  check.greater("F7: application-triggered failures are a major share",
                shares.application_triggered, 0.4);
  return check.exit_code();
}
