file(REMOVE_RECURSE
  "libhpcfail_jobs.a"
)
