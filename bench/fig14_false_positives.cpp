// Fig 14: false-positive rate of the failure predictor with and without
// external correlations.  Paper: the FP rate is lower with external
// correlations considered (e.g. 30.77% down to 21.43%), because healthy
// nodes rarely show the full multi-universe correlation pattern.
#include "bench_common.hpp"
#include "core/leadtime.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 14: predictor false positives (S1, 4 weeks)");

  const auto p = bench::run_system(platform::SystemName::S1, 28, 1414);
  const core::LeadTimeAnalyzer analyzer(p.parsed.store);

  const auto internal_only = analyzer.evaluate_predictor(p.failures, false);
  const auto with_external = analyzer.evaluate_predictor(p.failures, true);

  util::TextTable table({"Predictor", "flagged", "true pos", "false pos", "FP rate"});
  table.row()
      .cell("internal patterns only")
      .cell(static_cast<std::int64_t>(internal_only.flagged))
      .cell(static_cast<std::int64_t>(internal_only.true_positive))
      .cell(static_cast<std::int64_t>(internal_only.false_positive))
      .pct(internal_only.fp_rate());
  table.row()
      .cell("with external correlation")
      .cell(static_cast<std::int64_t>(with_external.flagged))
      .cell(static_cast<std::int64_t>(with_external.true_positive))
      .cell(static_cast<std::int64_t>(with_external.false_positive))
      .pct(with_external.fp_rate());
  std::cout << table.render() << '\n';

  check.in_range("FP rate, internal-only (paper 30.77%)", internal_only.fp_rate(), 0.15,
                 0.50);
  check.in_range("FP rate, with external (paper 21.43%)", with_external.fp_rate(), 0.05,
                 0.35);
  check.greater("external correlation lowers the FP rate", internal_only.fp_rate(),
                with_external.fp_rate());
  check.greater("predictor still catches failures with the external gate",
                static_cast<double>(with_external.true_positive), 5.0);
  return check.exit_code();
}
