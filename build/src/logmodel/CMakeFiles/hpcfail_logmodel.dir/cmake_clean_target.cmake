file(REMOVE_RECURSE
  "libhpcfail_logmodel.a"
)
