file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_parsers.dir/corpus_parser.cpp.o"
  "CMakeFiles/hpcfail_parsers.dir/corpus_parser.cpp.o.d"
  "CMakeFiles/hpcfail_parsers.dir/line_classifier.cpp.o"
  "CMakeFiles/hpcfail_parsers.dir/line_classifier.cpp.o.d"
  "CMakeFiles/hpcfail_parsers.dir/source_parsers.cpp.o"
  "CMakeFiles/hpcfail_parsers.dir/source_parsers.cpp.o.d"
  "libhpcfail_parsers.a"
  "libhpcfail_parsers.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_parsers.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
