file(REMOVE_RECURSE
  "CMakeFiles/tab03_fault_breakdown.dir/tab03_fault_breakdown.cpp.o"
  "CMakeFiles/tab03_fault_breakdown.dir/tab03_fault_breakdown.cpp.o.d"
  "tab03_fault_breakdown"
  "tab03_fault_breakdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab03_fault_breakdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
