#include "jobs/workload.hpp"

#include <algorithm>
#include <cmath>

namespace hpcfail::jobs {

WorkloadGenerator::WorkloadGenerator(const platform::Topology& topo, AppCatalog catalog,
                                     WorkloadConfig config, util::Rng rng)
    : topo_(topo), catalog_(std::move(catalog)), config_(std::move(config)), rng_(rng) {}

std::uint32_t WorkloadGenerator::sample_size(util::Rng& rng) const {
  static constexpr std::uint32_t kLo[] = {1, 2, 8, 64, 512};
  static constexpr std::uint32_t kHi[] = {1, 4, 32, 256, 2048};
  const std::size_t cls = rng.weighted_index(config_.size_class_weights);
  const std::size_t idx = std::min<std::size_t>(cls, 4);
  const auto size = static_cast<std::uint32_t>(
      rng.uniform_int(kLo[idx], kHi[idx]));
  return std::min(size, std::max(1u, topo_.node_count() / 2));
}

std::vector<Job> WorkloadGenerator::generate(util::TimePoint begin, util::TimePoint end) {
  std::vector<Job> out;
  NodeAllocator allocator(topo_);
  const double rate_per_min = config_.arrivals_per_hour / 60.0;
  util::TimePoint t = begin;
  std::vector<std::string> users = {"alice", "bob", "chen", "dara", "eli",
                                    "fei",   "gus", "hana", "ivan", "jing"};
  while (true) {
    const double gap_min = rng_.exponential(rate_per_min);
    t = t + util::Duration::seconds(static_cast<std::int64_t>(gap_min * 60.0));
    if (t >= end) break;

    Job job;
    job.job_id = next_job_id_++;
    job.apid = job.job_id * 10 + 7;  // distinct apid namespace, stable mapping
    const AppProfile& app = catalog_.sample(rng_);
    job.app_name = app.name;
    job.user = users[static_cast<std::size_t>(
        rng_.uniform_int(0, static_cast<std::int64_t>(users.size()) - 1))];
    job.submit = t - util::Duration::seconds(rng_.uniform_int(5, 3600));
    job.start = t;
    const double duration_min =
        std::min(rng_.lognormal(config_.duration_lognorm_mu, config_.duration_lognorm_sigma),
                 1440.0 * 3);
    job.end = t + util::Duration::seconds(static_cast<std::int64_t>(duration_min * 60.0));
    job.walltime_limit = config_.default_walltime;
    job.mem_per_node_gb = std::max(1.0, rng_.normal(app.mem_hunger_gb, app.mem_hunger_gb * 0.2));

    const std::uint32_t want = sample_size(rng_);
    const AllocPolicy policy = rng_.bernoulli(config_.blade_packed_fraction)
                                   ? AllocPolicy::BladePacked
                                   : AllocPolicy::Scattered;
    job.nodes = allocator.allocate(want, job.start, job.end, policy, rng_);
    if (job.nodes.empty()) {
      // Machine busy: try a quarter-size job before skipping the arrival.
      job.nodes = allocator.allocate(std::max(1u, want / 4), job.start, job.end, policy, rng_);
      if (job.nodes.empty()) continue;
    }

    // Provisional scheduler-side outcome; the fault simulator may override.
    const double roll = rng_.uniform();
    if (roll < app.p_config_error) {
      job.outcome = JobOutcome::ConfigError;
      // Configuration errors surface early: truncate the runtime.
      job.end = job.start + util::Duration::seconds(
                                std::max<std::int64_t>(30, static_cast<std::int64_t>(
                                                               duration_min * 6.0)));
    } else if (roll < app.p_config_error + app.p_nonzero_exit) {
      job.outcome = JobOutcome::NonZeroExit;
    } else if (roll < app.p_config_error + app.p_nonzero_exit + 0.012) {
      job.outcome = JobOutcome::UserCancelled;
      job.end = job.start + util::Duration::seconds(static_cast<std::int64_t>(
                                duration_min * 60.0 * rng_.uniform(0.05, 0.8)));
    }
    out.push_back(std::move(job));
  }
  std::sort(out.begin(), out.end(),
            [](const Job& a, const Job& b) { return a.start < b.start; });
  return out;
}

}  // namespace hpcfail::jobs
