// Streaming-ingestion equivalence suite: the file-backed chunked path
// (ingest_files / ingest_stream) must produce byte-identical results to
// the in-memory parse_corpus path — same records in the same order, same
// job table, same line accounting — for every system preset and for any
// chunk/shard geometry, including pathological one-byte chunks.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/ingest.hpp"
#include "util/metrics.hpp"
#include "util/rng.hpp"

namespace hpcfail {
namespace {

using logmodel::LogRecord;
using logmodel::LogSource;

void expect_records_equal(const logmodel::LogStore& want,
                          const logmodel::LogStore& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    const LogRecord& a = want[i];
    const LogRecord& b = got[i];
    ASSERT_EQ(a.time.usec, b.time.usec) << "record " << i;
    ASSERT_EQ(a.source, b.source) << "record " << i;
    ASSERT_EQ(a.type, b.type) << "record " << i;
    ASSERT_EQ(a.severity, b.severity) << "record " << i;
    ASSERT_EQ(a.node, b.node) << "record " << i;
    ASSERT_EQ(a.blade, b.blade) << "record " << i;
    ASSERT_EQ(a.cabinet, b.cabinet) << "record " << i;
    ASSERT_EQ(a.job_id, b.job_id) << "record " << i;
    ASSERT_EQ(a.value, b.value) << "record " << i;
    // The two paths absorb worker tables in different orders, so Symbol
    // ids may differ; the resolved text must not.
    ASSERT_EQ(want.detail(i), got.detail(i)) << "record " << i;
  }
}

void expect_jobs_equal(const jobs::JobTable& want, const jobs::JobTable& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.jobs().size(); ++i) {
    const jobs::JobInfo& a = want.jobs()[i];
    const jobs::JobInfo& b = got.jobs()[i];
    ASSERT_EQ(a.job_id, b.job_id) << "job " << i;
    ASSERT_EQ(a.apid, b.apid) << "job " << i;
    ASSERT_EQ(a.user, b.user) << "job " << i;
    ASSERT_EQ(a.app_name, b.app_name) << "job " << i;
    ASSERT_EQ(a.start.usec, b.start.usec) << "job " << i;
    ASSERT_EQ(a.end.usec, b.end.usec) << "job " << i;
    ASSERT_EQ(a.mem_per_node_gb, b.mem_per_node_gb) << "job " << i;
    ASSERT_EQ(a.nodes, b.nodes) << "job " << i;
    ASSERT_EQ(a.exit_code, b.exit_code) << "job " << i;
    ASSERT_EQ(a.end_reason, b.end_reason) << "job " << i;
    ASSERT_EQ(a.ended, b.ended) << "job " << i;
    ASSERT_EQ(a.overallocated, b.overallocated) << "job " << i;
    ASSERT_EQ(a.overallocated_nodes, b.overallocated_nodes) << "job " << i;
    ASSERT_EQ(a.cancelled, b.cancelled) << "job " << i;
  }
}

void expect_equivalent(const parsers::ParsedCorpus& want,
                       const parsers::ParsedCorpus& got) {
  EXPECT_EQ(want.system.label, got.system.label);
  EXPECT_EQ(want.topology.node_count(), got.topology.node_count());
  EXPECT_EQ(want.total_lines, got.total_lines);
  EXPECT_EQ(want.parsed_records, got.parsed_records);
  EXPECT_EQ(want.skipped_lines, got.skipped_lines);
  expect_records_equal(want.store, got.store);
  expect_jobs_equal(want.jobs, got.jobs);
}

/// Writes `corpus` into a fresh directory under /tmp and returns the path.
std::string write_to_temp(const loggen::Corpus& corpus, const char* tag) {
  const std::string dir = std::string("/tmp/hpcfail_ingest_test_") + tag;
  std::filesystem::remove_all(dir);
  loggen::write_corpus(corpus, dir);
  return dir;
}

struct IngestCase {
  platform::SystemName system;
  std::uint64_t seed;
  const char* tag;
};

class IngestEquivalence : public ::testing::TestWithParam<IngestCase> {
 protected:
  void SetUp() override {
    const auto sim =
        faultsim::Simulator(faultsim::scenario_preset(GetParam().system, 2, GetParam().seed))
            .run();
    corpus_ = loggen::build_corpus(sim);
    reference_ = std::make_unique<parsers::ParsedCorpus>(parsers::parse_corpus(corpus_));
  }

  void TearDown() override {
    if (!dir_.empty()) std::filesystem::remove_all(dir_);
  }

  loggen::Corpus corpus_;
  std::unique_ptr<parsers::ParsedCorpus> reference_;
  std::string dir_;
};

TEST_P(IngestEquivalence, FilesMatchInMemoryParse) {
  dir_ = write_to_temp(corpus_, GetParam().tag);
  const auto streamed = parsers::ingest_files(dir_);
  ASSERT_GT(streamed.parsed_records, 0u);
  expect_equivalent(*reference_, streamed);
}

TEST_P(IngestEquivalence, TinyChunksAndShardsMatch) {
  // Pathological geometry: 57-byte chunks (every line spans chunks) and
  // 64-record shards force maximal splitting and merging.
  dir_ = write_to_temp(corpus_, GetParam().tag);
  parsers::IngestOptions options;
  options.chunk_bytes = 57;
  options.max_inflight_chunks = 3;
  options.shard_records = 64;
  expect_equivalent(*reference_, parsers::ingest_files(dir_, options));
}

TEST_P(IngestEquivalence, StreamEntryMatchesWithShuffledSourceOrder) {
  // ingest_stream must parse in canonical source order no matter how the
  // caller ordered the vector.
  std::array<std::istringstream, logmodel::kLogSourceCount> streams;
  std::vector<parsers::SourceStream> sources;
  for (std::size_t i = logmodel::kLogSourceCount; i-- > 0;) {
    streams[i].str(corpus_.text[i]);
    sources.push_back({static_cast<LogSource>(i), &streams[i]});
  }
  expect_equivalent(*reference_, parsers::ingest_stream(corpus_, sources));
}

INSTANTIATE_TEST_SUITE_P(
    Presets, IngestEquivalence,
    ::testing::Values(IngestCase{platform::SystemName::S1, 7001, "s1"},
                      IngestCase{platform::SystemName::S2, 7002, "s2"},
                      IngestCase{platform::SystemName::S5, 7005, "s5"}),
    [](const auto& info) { return info.param.tag; });

// ------------------------------------------------------------ edges ----

loggen::Corpus small_corpus() {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 1, 99)).run();
  return loggen::build_corpus(sim);
}

TEST(IngestEdgeTest, MissingManifestThrows) {
  EXPECT_THROW(parsers::ingest_files("/tmp/hpcfail_no_such_dir_ingest"),
               std::runtime_error);
}

TEST(IngestEdgeTest, ManifestOnlyDirectoryYieldsEmptyStore) {
  loggen::Corpus corpus = small_corpus();
  for (auto& text : corpus.text) text.clear();  // write_corpus skips empty files
  const std::string dir = write_to_temp(corpus, "manifest_only");
  const auto streamed = parsers::ingest_files(dir);
  EXPECT_EQ(streamed.total_lines, 0u);
  EXPECT_EQ(streamed.parsed_records, 0u);
  EXPECT_EQ(streamed.store.size(), 0u);
  EXPECT_EQ(streamed.jobs.size(), 0u);
  std::filesystem::remove_all(dir);
}

TEST(IngestEdgeTest, NoTrailingNewlineParsesLastLine) {
  loggen::Corpus corpus = small_corpus();
  auto& console = corpus.of(logmodel::LogSource::Console);
  ASSERT_FALSE(console.empty());
  console.pop_back();  // drop the final '\n'
  const auto reference = parsers::parse_corpus(corpus);
  const std::string dir = write_to_temp(corpus, "no_trailing_nl");
  expect_equivalent(reference, parsers::ingest_files(dir));
  std::filesystem::remove_all(dir);
}

TEST(IngestEdgeTest, TruncatedFileMatchesTruncatedText) {
  // A file chopped mid-line (e.g. copied while being written) must degrade
  // exactly like the in-memory parse of the same truncated text: complete
  // lines parse, the partial tail line is skipped, nothing crashes.
  loggen::Corpus corpus = small_corpus();
  auto& console = corpus.of(logmodel::LogSource::Console);
  ASSERT_GT(console.size(), 100u);
  console.resize(console.size() - 37);  // mid-line with high probability
  const auto reference = parsers::parse_corpus(corpus);
  const std::string dir = write_to_temp(corpus, "truncated");
  expect_equivalent(reference, parsers::ingest_files(dir));
  std::filesystem::remove_all(dir);
}

TEST(IngestEdgeTest, EmptySourceFileIsSkipped) {
  loggen::Corpus corpus = small_corpus();
  corpus.of(logmodel::LogSource::Erd).clear();
  const std::string dir = write_to_temp(corpus, "empty_file");
  // Zero-byte file alongside real ones: opens fine, yields no lines.
  std::ofstream(std::filesystem::path(dir) / "erd.log", std::ios::binary).close();
  const auto reference = parsers::parse_corpus(corpus);
  expect_equivalent(reference, parsers::ingest_files(dir));
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------- observability ----

/// Seeded sweep over 32 log-uniform chunk sizes in [1, 1 MiB]: every
/// geometry must reproduce the in-memory parse record for record, and the
/// ingest counters must account for the corpus exactly — bytes_read equals
/// the total size of the ingested .log files (ChunkedLineReader passes
/// bytes through untouched), records_parsed/lines_skipped equal the parse
/// totals.
TEST(IngestObservability, RandomChunkSizeSweepPreservesRecordsAndCounters) {
  const loggen::Corpus corpus = small_corpus();
  const auto reference = parsers::parse_corpus(corpus);
  const std::string dir = write_to_temp(corpus, "chunk_sweep");

  std::uintmax_t corpus_bytes = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() == ".log") corpus_bytes += entry.file_size();
  }
  ASSERT_GT(corpus_bytes, 0u);

  util::Rng rng(20260807);
  for (int i = 0; i < 32; ++i) {
    const auto exponent = rng.uniform_int(0, 20);
    const auto hi = std::int64_t{1} << exponent;
    const auto lo = std::max<std::int64_t>(1, hi / 2);
    parsers::IngestOptions options;
    options.chunk_bytes = static_cast<std::size_t>(rng.uniform_int(lo, hi));
    options.max_inflight_chunks = static_cast<std::size_t>(rng.uniform_int(1, 5));
    SCOPED_TRACE("sweep " + std::to_string(i) + ": chunk_bytes=" +
                 std::to_string(options.chunk_bytes) +
                 " inflight=" + std::to_string(options.max_inflight_chunks));

    // A dedicated pool scoped inside the registry's lifetime: its
    // destructor joins the workers, so every instrumented task epilogue
    // lands before the registry is uninstalled and destroyed (the
    // install_metrics contract).  A fresh registry per iteration also
    // exercises the pool's rebind across metrics generations.
    util::MetricsRegistry registry;
    util::install_metrics(&registry);
    parsers::ParsedCorpus streamed;
    {
      util::ThreadPool pool(2);
      options.pool = &pool;
      streamed = parsers::ingest_files(dir, options);
    }
    util::install_metrics(nullptr);

    expect_equivalent(reference, streamed);

    std::map<std::string, std::uint64_t> counters;
    for (const auto& [name, value] : registry.counters()) counters[name] = value;
    EXPECT_EQ(counters["hpcfail.ingest.bytes_read"], corpus_bytes);
    EXPECT_EQ(counters["hpcfail.ingest.records_parsed"], reference.parsed_records);
    EXPECT_EQ(counters["hpcfail.ingest.lines_skipped"], reference.skipped_lines);
    EXPECT_GE(counters["hpcfail.ingest.chunks"],
              std::uint64_t{1} + (corpus_bytes - 1) / (options.chunk_bytes + 4096));
  }
  std::filesystem::remove_all(dir);
}

TEST(IngestEdgeTest, SerialPoolMatchesSharedPool) {
  const loggen::Corpus corpus = small_corpus();
  const auto reference = parsers::parse_corpus(corpus);
  const std::string dir = write_to_temp(corpus, "serial_pool");
  util::ThreadPool serial(1);
  parsers::IngestOptions options;
  options.pool = &serial;
  expect_equivalent(reference, parsers::ingest_files(dir, options));
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace hpcfail
