// Machine topology: cabinets -> chassis -> blades (slots) -> nodes.
//
// The topology is a pure index structure; given the per-level arities and an
// optional node cap it maps between dense ids and physical cnames in O(1).
// All analysis-side spatial reasoning (blade/cabinet attribution, Fig 7,
// Fig 18) goes through this class rather than re-deriving geometry.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "platform/cname.hpp"
#include "platform/ids.hpp"

namespace hpcfail::platform {

/// How nodes are named in raw logs.
enum class NamingScheme {
  CrayCname,  ///< nid##### in internal logs, cnames in controller logs
  Hostname,   ///< node#### everywhere (institutional cluster)
};

struct TopologyConfig {
  int cabinet_cols = 1;        ///< cabinets per row (cname X range)
  int cabinet_rows = 1;        ///< rows of cabinets (cname Y range)
  int chassis_per_cabinet = 3; ///< Cray XC: 3 chassis per cabinet
  int slots_per_chassis = 16;  ///< 16 blades per chassis
  int nodes_per_slot = 4;      ///< 4 nodes per blade
  /// Optional cap on total node count (a partially populated machine);
  /// 0 means fully populated.
  std::uint32_t max_nodes = 0;
  NamingScheme naming = NamingScheme::CrayCname;
};

class Topology {
 public:
  /// Default: one fully-populated Cray cabinet (192 nodes).
  Topology() : Topology(TopologyConfig{}) {}
  explicit Topology(const TopologyConfig& config);

  [[nodiscard]] const TopologyConfig& config() const noexcept { return config_; }

  [[nodiscard]] std::uint32_t node_count() const noexcept { return node_count_; }
  [[nodiscard]] std::uint32_t blade_count() const noexcept { return blade_count_; }
  [[nodiscard]] std::uint32_t chassis_count() const noexcept { return chassis_count_; }
  [[nodiscard]] std::uint32_t cabinet_count() const noexcept { return cabinet_count_; }

  [[nodiscard]] BladeId blade_of(NodeId n) const noexcept;
  [[nodiscard]] ChassisId chassis_of(BladeId b) const noexcept;
  [[nodiscard]] CabinetId cabinet_of(NodeId n) const noexcept;
  [[nodiscard]] CabinetId cabinet_of_blade(BladeId b) const noexcept;

  /// Nodes on a blade, clipped to node_count for a partial machine.
  [[nodiscard]] std::vector<NodeId> nodes_on_blade(BladeId b) const;

  /// First node index on a blade (the blade may be partially populated).
  [[nodiscard]] NodeId first_node(BladeId b) const noexcept;

  [[nodiscard]] Cname cname_of(NodeId n) const noexcept;
  [[nodiscard]] Cname cname_of_blade(BladeId b) const noexcept;
  [[nodiscard]] Cname cname_of_cabinet(CabinetId c) const noexcept;

  [[nodiscard]] std::optional<NodeId> node_from_cname(const Cname& c) const noexcept;
  [[nodiscard]] std::optional<BladeId> blade_from_cname(const Cname& c) const noexcept;
  [[nodiscard]] std::optional<CabinetId> cabinet_from_cname(const Cname& c) const noexcept;

  /// Node hostname as it appears in internal logs (nid##### or node####).
  [[nodiscard]] std::string node_name(NodeId n) const;

  /// Inverse of node_name; validates against node_count.
  [[nodiscard]] std::optional<NodeId> node_from_name(std::string_view name) const noexcept;

  /// Manhattan distance between the cabinets of two nodes; a coarse
  /// physical-distance proxy used by the spatial analyzer.
  [[nodiscard]] int cabinet_distance(NodeId a, NodeId b) const noexcept;

 private:
  TopologyConfig config_;
  std::uint32_t nodes_per_blade_;
  std::uint32_t blades_per_chassis_;
  std::uint32_t chassis_per_cabinet_;
  std::uint32_t node_count_;
  std::uint32_t blade_count_;
  std::uint32_t chassis_count_;
  std::uint32_t cabinet_count_;
};

}  // namespace hpcfail::platform
