# Empty compiler generated dependencies file for fig14_false_positives.
# This may be replaced when dependencies are built.
