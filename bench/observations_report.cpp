// Capstone: all nine Observations of the paper, verified in one run over a
// single 8-week S1 corpus (plus the S5 comparison corpus for Observation 6).
// Each observation is one or two measured claims; the summary line is the
// reproduction scoreboard.
#include "bench_common.hpp"
#include "core/benign_faults.hpp"
#include "core/external_correlator.hpp"
#include "core/job_analysis.hpp"
#include "core/leadtime.hpp"
#include "core/report.hpp"
#include "core/spatial.hpp"
#include "core/temporal.hpp"
#include "stats/timeseries.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Observations 1-9 scoreboard (S1, 8 weeks)");

  const auto p = bench::run_system(platform::SystemName::S1, 56, 5005);
  const auto begin = p.sim.config.begin;
  const auto end = p.sim.config.end();

  // --- Observation 1: failures minutes apart; same daily malfunction ---
  const core::TemporalAnalyzer temporal(p.failures);
  const auto gaps = temporal.inter_failure_minutes(begin, end);
  stats::Ecdf gap_ecdf{gaps};
  check.greater("O1a: majority of failure gaps within 16 min",
                gap_ecdf.fraction_at_or_below(16.0), 0.5);
  const auto days = temporal.dominant_cause_per_day(begin, 56);
  stats::StreamingStats dom;
  for (const auto& d : days) dom.add(d.dominant_share());
  check.in_range("O1b: mean dominant daily cause share (paper >65%)", dom.mean(), 0.60,
                 0.95);
  // Burstiness: windowed failure counts are over-dispersed vs Poisson.
  std::vector<double> times;
  for (const auto& f : p.failures) times.push_back((f.event.time - begin).to_hours());
  const auto counts = stats::windowed_counts(times, 0.0, 56.0 * 24.0, 1.0);
  check.greater("O1c: failure counts over-dispersed (Fano factor >> 1)",
                stats::index_of_dispersion(counts), 2.0);

  // --- Observation 2: NVF/NHF as early indicators, weak blade link ---
  const core::ExternalCorrelator correlator(p.parsed.store, p.failures);
  const auto nvf = correlator.correspondence(logmodel::EventType::NodeVoltageFault, begin, end);
  const auto nhf = correlator.correspondence(logmodel::EventType::NodeHeartbeatFault, begin, end);
  check.in_range("O2a: NVF->failure correspondence (paper 67-97%)", nvf.fraction(), 0.55,
                 1.0);
  check.in_range("O2b: NHF->failure correspondence (paper 21-64%)", nhf.fraction(), 0.15,
                 0.75);

  // --- Observation 3: blade/cabinet signals are not primary causes ---
  const core::SpatialAnalyzer spatial(p.parsed.store, p.parsed.topology);
  const auto attribution = spatial.attribute(p.failures, begin, end);
  check.in_range("O3: failures on 'faulty' blades stay a weak minority-to-half",
                 attribution.blade_fraction(), 0.10, 0.70);

  // --- Observation 4: erroring nodes mostly do not fail ---
  const core::BenignFaultAnalyzer benign(p.parsed.store);
  const double err_fail = benign.erroring_node_failure_fraction(
      logmodel::EventType::HardwareError, begin, end, util::Duration::hours(24), p.failures);
  check.in_range("O4: HW-erroring nodes that fail within a day", err_fail, 0.0, 0.40);

  // --- Observation 5: external indicators buy ~5x lead time for 10-28% ---
  const core::LeadTimeAnalyzer leadtime(p.parsed.store);
  const auto lt = leadtime.summarize(p.failures);
  check.in_range("O5a: enhanceable fraction (paper 10-28%)", lt.enhanceable_fraction(),
                 0.08, 0.32);
  check.in_range("O5b: lead-time enhancement factor (paper ~5x)", lt.enhancement_factor(),
                 3.0, 9.0);

  // --- Observation 6: file-system bugs frequent on Cray, not on S5 ---
  const auto s1_breakdown = core::cause_breakdown(p.failures);
  const auto s5 = bench::run_system(platform::SystemName::S5, 28, 5006);
  const auto s5_breakdown = core::cause_breakdown(s5.failures);
  check.greater("O6: Lustre-bug failure share higher on Cray than institutional",
                s1_breakdown.share(logmodel::RootCause::LustreBug),
                s5_breakdown.share(logmodel::RootCause::LustreBug));

  // --- Observation 7: application-triggered origin dominates ---
  const auto shares = core::layer_shares(p.failures);
  check.greater("O7: application-triggered failures are a major share",
                shares.application_triggered, 0.35);

  // --- Observation 8: shared-job failures span blades, temporally local ---
  const core::JobAnalyzer jobs(p.parsed.jobs, p.failures);
  check.greater("O8a: shared-job failure groups span multiple blades",
                jobs.multi_blade_shared_job_fraction(), 0.3);
  const auto groups = jobs.shared_job_groups(2);
  stats::StreamingStats spans;
  for (const auto& g : groups) spans.add(g.span.to_minutes());
  if (spans.count() > 0) {
    check.in_range("O8b: shared-job group span (temporal locality, minutes)", spans.mean(),
                   0.0, 60.0);
  }

  // --- Observation 9: undeducible patterns stay undeducible ---
  const double unknown_share = s1_breakdown.share(logmodel::RootCause::BiosUnknown) +
                               s1_breakdown.share(logmodel::RootCause::L0SysdMceUnknown) +
                               s1_breakdown.share(logmodel::RootCause::OperatorError) +
                               s1_breakdown.share(logmodel::RootCause::Unknown);
  check.in_range("O9: small share of failures stays without a deducible cause",
                 unknown_share, 0.005, 0.20);
  return check.exit_code();
}
