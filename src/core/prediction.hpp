// Learned failure prediction: the ML-guided direction the paper recommends
// ("node failure prediction schemes can incorporate external correlations").
//
// A feature vector summarizes a node's recent history at a point in time —
// counts of each internal indicator family plus, optionally, the external
// (controller/ERD) indicator counts on the node's blade.  A logistic model
// trained on one corpus is evaluated on another; comparing the
// internal-only feature set against internal+external measures exactly the
// effect Fig 14 reports, now as a learned predictor.
#pragma once

#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/log_store.hpp"
#include "stats/logistic.hpp"
#include "util/rng.hpp"

namespace hpcfail::core {

struct FeatureConfig {
  util::Duration internal_window = util::Duration::minutes(30);
  util::Duration external_window = util::Duration::hours(1);
  bool include_external = true;
};

/// Names of the features, in vector order (for reports).
[[nodiscard]] std::vector<std::string> feature_names(const FeatureConfig& config);

class FeatureExtractor {
 public:
  FeatureExtractor(const logmodel::LogStore& store, FeatureConfig config)
      : store_(store), config_(config) {}

  /// Features for node at time `t` (looking backwards only).
  [[nodiscard]] std::vector<double> extract(platform::NodeId node, platform::BladeId blade,
                                            util::TimePoint t) const;

 private:
  const logmodel::LogStore& store_;
  FeatureConfig config_;
};

struct LabeledDataset {
  std::vector<std::vector<double>> features;
  std::vector<int> labels;
  std::size_t positives = 0;
};

struct DatasetConfig {
  FeatureConfig features;
  /// A positive example is sampled this far before each failure.
  util::Duration positive_offset = util::Duration::minutes(2);
  /// Negatives per positive, sampled at (node, time) pairs with no failure
  /// within the horizon.
  double negatives_per_positive = 3.0;
  util::Duration failure_horizon = util::Duration::hours(1);
  std::uint64_t seed = 1234;
};

/// Builds a training/evaluation dataset from a corpus and its detected
/// failures.
[[nodiscard]] LabeledDataset build_dataset(const logmodel::LogStore& store,
                                           const std::vector<AnalyzedFailure>& failures,
                                           std::uint32_t node_count,
                                           const DatasetConfig& config);

struct TrainedPredictor {
  stats::LogisticModel model;
  FeatureConfig features;
};

/// Trains on one corpus's dataset.
[[nodiscard]] TrainedPredictor train_predictor(const LabeledDataset& train,
                                               const FeatureConfig& features);

/// Evaluates on another corpus's dataset.
[[nodiscard]] stats::BinaryMetrics evaluate_predictor_model(const TrainedPredictor& predictor,
                                                            const LabeledDataset& test,
                                                            double threshold = 0.5);

}  // namespace hpcfail::core
