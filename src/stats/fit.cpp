#include "stats/fit.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

namespace hpcfail::stats {

namespace {
std::vector<double> positive_sorted(std::span<const double> sample) {
  std::vector<double> v;
  v.reserve(sample.size());
  for (double x : sample) {
    if (x > 0.0 && std::isfinite(x)) v.push_back(x);
  }
  std::sort(v.begin(), v.end());
  return v;
}

double ks_distance(const std::vector<double>& sorted, const auto& cdf) {
  const auto n = static_cast<double>(sorted.size());
  double sup = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double model = cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    sup = std::max({sup, std::abs(model - lo), std::abs(model - hi)});
  }
  return sup;
}
}  // namespace

std::optional<ExponentialFit> fit_exponential(std::span<const double> sample) {
  const auto v = positive_sorted(sample);
  if (v.empty()) return std::nullopt;
  double sum = 0.0;
  for (double x : v) sum += x;
  if (sum <= 0.0) return std::nullopt;
  return ExponentialFit{static_cast<double>(v.size()) / sum};
}

std::optional<WeibullFit> fit_weibull(std::span<const double> sample) {
  const auto v = positive_sorted(sample);
  if (v.size() < 2 || v.front() == v.back()) return std::nullopt;

  // Profile-likelihood equation for shape k:
  //   g(k) = sum(x^k ln x)/sum(x^k) - 1/k - mean(ln x) = 0
  double mean_ln = 0.0;
  for (double x : v) mean_ln += std::log(x);
  mean_ln /= static_cast<double>(v.size());

  double k = 1.0;
  for (int iter = 0; iter < 100; ++iter) {
    double s0 = 0.0, s1 = 0.0, s2 = 0.0;
    for (double x : v) {
      const double lx = std::log(x);
      const double xk = std::pow(x, k);
      s0 += xk;
      s1 += xk * lx;
      s2 += xk * lx * lx;
    }
    const double g = s1 / s0 - 1.0 / k - mean_ln;
    const double gp = (s2 * s0 - s1 * s1) / (s0 * s0) + 1.0 / (k * k);
    if (gp <= 0.0) break;
    const double next = k - g / gp;
    if (!(next > 0.0) || !std::isfinite(next)) break;
    if (std::abs(next - k) < 1e-10 * k) {
      k = next;
      break;
    }
    k = next;
  }
  if (!(k > 0.0) || !std::isfinite(k)) return std::nullopt;

  double sk = 0.0;
  for (double x : v) sk += std::pow(x, k);
  const double lambda = std::pow(sk / static_cast<double>(v.size()), 1.0 / k);
  return WeibullFit{k, lambda};
}

std::optional<LogNormalFit> fit_lognormal(std::span<const double> sample) {
  const auto v = positive_sorted(sample);
  if (v.size() < 2) return std::nullopt;
  double mu = 0.0;
  for (double x : v) mu += std::log(x);
  mu /= static_cast<double>(v.size());
  double var = 0.0;
  for (double x : v) {
    const double d = std::log(x) - mu;
    var += d * d;
  }
  var /= static_cast<double>(v.size());
  return LogNormalFit{mu, std::sqrt(var)};
}

double ks_statistic_exponential(std::span<const double> sample, const ExponentialFit& fit) {
  const auto v = positive_sorted(sample);
  if (v.empty()) return 0.0;
  return ks_distance(v, [&fit](double x) { return 1.0 - std::exp(-fit.rate * x); });
}

double ks_statistic_weibull(std::span<const double> sample, const WeibullFit& fit) {
  const auto v = positive_sorted(sample);
  if (v.empty()) return 0.0;
  return ks_distance(v, [&fit](double x) {
    return 1.0 - std::exp(-std::pow(x / fit.scale, fit.shape));
  });
}

}  // namespace hpcfail::stats
