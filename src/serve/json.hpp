// Minimal JSON support for the serve protocol (FORMATS.md "serve
// protocol").  The daemon speaks line-delimited JSON on its production
// boundary, so this lives in src/ rather than leaning on the test-only
// helper in tests/support/json.hpp (which production code must not
// include).  Scope is deliberately small: parse one request line into a
// JsonValue tree, and append deterministically formatted values to an
// output string.  Responses are assembled key-by-key by the handlers (the
// envelope fixes the key order), so there is no generic serializer.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcfail::serve {

/// A parsed JSON value.  Objects preserve member order (requests are tiny;
/// lookup is a linear scan) and duplicate keys keep the first occurrence,
/// so a request cannot smuggle two different "verb" members past a check.
class JsonValue {
 public:
  enum class Kind : std::uint8_t { Null, Bool, Number, String, Array, Object };

  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::Null; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::Bool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::Number; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::String; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::Array; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::Object; }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_number() const noexcept { return number_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return string_; }
  [[nodiscard]] const std::vector<JsonValue>& items() const noexcept { return items_; }
  [[nodiscard]] const std::vector<Member>& members() const noexcept { return members_; }

  /// First member named `key`, or nullptr.  Valid only on objects (an
  /// empty member list answers nullptr for every other kind).
  [[nodiscard]] const JsonValue* find(std::string_view key) const noexcept;

  /// The member as a non-negative integer that survives a double round
  /// trip (request ids); nullopt when absent, mistyped or out of range.
  [[nodiscard]] std::optional<std::uint64_t> uint_member(std::string_view key) const;

  /// Parses one complete JSON document.  Trailing garbage, unterminated
  /// strings, bad escapes, and nesting deeper than 32 levels all yield
  /// nullopt — the protocol layer turns that into a structured error.
  [[nodiscard]] static std::optional<JsonValue> parse(std::string_view text);

  [[nodiscard]] static JsonValue make_null() { return JsonValue{}; }
  [[nodiscard]] static JsonValue make_bool(bool v);
  [[nodiscard]] static JsonValue make_number(double v);
  [[nodiscard]] static JsonValue make_string(std::string v);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<Member> members_;

  friend class JsonParser;
};

/// Appends `s` as a quoted JSON string, escaping `"` `\` and control
/// characters (the latter as \u00XX).  Deterministic byte-for-byte.
void append_json_string(std::string& out, std::string_view s);

/// Appends a number: integral values in [-2^53, 2^53] as plain integers,
/// everything else via "%.6g" — compact, deterministic, and precise enough
/// for the ratio-valued fields the protocol carries.
void append_json_number(std::string& out, double v);
void append_json_number(std::string& out, std::uint64_t v);
void append_json_number(std::string& out, std::int64_t v);

}  // namespace hpcfail::serve
