#include "util/fault.hpp"

#include <algorithm>
#include <atomic>
#include <charconv>
#include <stdexcept>

#include "util/metrics.hpp"

namespace hpcfail::util {

namespace {

// The site inventory: every HPCFAIL_FAULT_SITE literal in the tree, sorted.
// hpcfail-lint's fault-sites check enforces that this list and the call
// sites agree in both directions, so the sweep in tests/faultinject_test.cpp
// really does enumerate every injection point.
constexpr std::string_view kSites[] = {
    "faultsim.scenario_io.bad_alloc",  // scenario_to_string allocation failure
    "ingest.parse.bad_alloc",          // chunk parse task allocation failure
    "ingest.read.badbit",              // stream I/O error (badbit) mid-corpus
    "ingest.read.midline_eof",         // stream ends in the middle of a line
    "ingest.read.short_read",          // read() returns fewer bytes than asked
    "ingest.read.torn_chunk",          // chunk bytes garbled in flight
    "ingest.retire.bad_alloc",         // chunk retirement allocation failure
    "loggen.write.badbit",             // corpus log file write error
    "serve.request.parse",             // torn client request line on the protocol boundary
    "serve.tail.read_io",              // tail-file read I/O failure mid-poll
    "store.append_batch.bad_alloc",    // shard append allocation failure
    "store.snapshot.read_io",          // snapshot read/validate I/O failure
    "store.snapshot.write_io",         // snapshot section write I/O failure
    "store.symbol_absorb.bad_alloc",   // symbol-table merge allocation failure
};

std::atomic<FaultInjector*> g_injector{nullptr};

void note_fire(std::string_view site) {
  if (MetricsRegistry* reg = metrics()) {
    reg->counter("hpcfail.fault.injected").increment();
    const std::string layer(site.substr(0, site.find('.')));
    reg->counter("hpcfail." + layer + ".faults_injected").increment();  // hpcfail-lint: allow(metric-naming) -- completed with the site's layer segment
  }
}

}  // namespace

void FaultInjector::arm(std::string_view site, std::uint64_t nth) {
  const auto inventory = sites();
  if (std::find(inventory.begin(), inventory.end(), site) == inventory.end()) {
    throw std::invalid_argument("FaultInjector: unknown fault site '" +
                                std::string(site) + "'");
  }
  const std::scoped_lock lock(mutex_);
  SiteState& state = armed_[std::string(site)];
  state.nth = std::max<std::uint64_t>(1, nth);
  state.hits = 0;
  state.fired = false;
}

void FaultInjector::arm_spec(std::string_view spec) {
  std::size_t begin = 0;
  while (begin <= spec.size()) {
    std::size_t end = spec.find(',', begin);
    if (end == std::string_view::npos) end = spec.size();
    const std::string_view entry = spec.substr(begin, end - begin);
    begin = end + 1;
    if (entry.empty()) {
      throw std::invalid_argument(
          "FaultInjector: empty entry in fault spec (grammar: "
          "<site>[:<n>][,<site>[:<n>]...])");
    }
    const std::size_t colon = entry.find(':');
    std::uint64_t nth = 1;
    if (colon != std::string_view::npos) {
      const std::string_view count = entry.substr(colon + 1);
      const auto [ptr, ec] =
          std::from_chars(count.data(), count.data() + count.size(), nth);
      if (ec != std::errc{} || ptr != count.data() + count.size() || nth == 0) {
        throw std::invalid_argument("FaultInjector: bad hit count in '" +
                                    std::string(entry) + "' (expected <site>:<n>, n >= 1)");
      }
    }
    arm(entry.substr(0, colon), nth);
    if (end == spec.size()) break;
  }
}

bool FaultInjector::hit(std::string_view site) noexcept {
  const std::scoped_lock lock(mutex_);
  const auto it = armed_.find(site);
  if (it == armed_.end()) return false;
  SiteState& state = it->second;
  ++state.hits;
  if (state.fired || state.hits != state.nth) return false;
  state.fired = true;
  return true;
}

std::uint64_t FaultInjector::hits(std::string_view site) const {
  const std::scoped_lock lock(mutex_);
  const auto it = armed_.find(site);
  return it == armed_.end() ? 0 : it->second.hits;
}

std::uint64_t FaultInjector::fires(std::string_view site) const {
  const std::scoped_lock lock(mutex_);
  const auto it = armed_.find(site);
  return it != armed_.end() && it->second.fired ? 1 : 0;
}

std::uint64_t FaultInjector::total_fires() const {
  const std::scoped_lock lock(mutex_);
  std::uint64_t total = 0;
  for (const auto& [name, state] : armed_) total += state.fired ? 1 : 0;
  return total;
}

std::vector<std::string> FaultInjector::summary() const {
  const std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(armed_.size());
  for (const auto& [name, state] : armed_) {
    out.push_back(name + (state.fired ? ": fired on hit " + std::to_string(state.nth)
                                      : ": armed for hit " + std::to_string(state.nth) +
                                            ", saw " + std::to_string(state.hits)) +
                  " (hits " + std::to_string(state.hits) + ")");
  }
  return out;
}

std::span<const std::string_view> FaultInjector::sites() { return kSites; }

void install_fault_injector(FaultInjector* injector) noexcept {
  g_injector.store(injector, std::memory_order_release);
}

FaultInjector* fault_injector() noexcept {
  return g_injector.load(std::memory_order_relaxed);
}

bool fault_should_fire(const char* site) noexcept {
  FaultInjector* injector = g_injector.load(std::memory_order_relaxed);
  if (injector == nullptr) return false;
  if (!injector->hit(site)) return false;
  note_fire(site);
  return true;
}

}  // namespace hpcfail::util
