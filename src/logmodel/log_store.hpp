// Time-sorted in-memory store of structured log records with secondary
// indexes by node, blade and event type.  Range queries are binary-searched
// over a structure-of-arrays time column (so the search never drags full
// records through cache); the per-key indexes keep the correlation passes
// (which repeatedly ask "events of type T for node N in window W")
// sub-linear.  The store owns the SymbolTable that resolves every record's
// interned detail Symbol; string_views returned by detail() stay valid for
// the store's lifetime.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>
#include <vector>

#include "logmodel/record.hpp"
#include "logmodel/symbol_table.hpp"
#include "util/csr.hpp"

namespace hpcfail::logmodel {

class LogStore {
 public:
  LogStore() = default;

  /// Takes ownership of the records (and the table their detail Symbols
  /// point into), sorts by time and builds indexes.
  explicit LogStore(std::vector<LogRecord> records, SymbolTable symbols = {});

  /// Builds a store from records already stably sorted by time (e.g. the
  /// k-way merge of StoreBuilder), skipping the O(n log n) global sort.
  /// Precondition (asserted in debug builds): records are time-ordered.
  [[nodiscard]] static LogStore from_sorted(std::vector<LogRecord> records,
                                            SymbolTable symbols = {});

  void add(LogRecord r);

  /// Sorts and (re)builds indexes. Must be called after the last add()
  /// and before any query. Idempotent.
  void finalize();

  // The accessors below are deliberately unguarded: they are noexcept
  // hot-path reads whose results (sizes, raw rows, interned text) are
  // well-defined on a non-finalized store too — only ORDER and the derived
  // indexes need finalize(), and everything order-dependent goes through
  // require_finalized() in log_store.cpp.  Each carries a reasoned
  // allow(finalize-protocol) so a new accessor cannot join them silently.
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }
  // hpcfail-lint: allow(finalize-protocol) -- count is order-independent; noexcept hot path
  [[nodiscard]] std::size_t size() const noexcept { return records_.size(); }
  // hpcfail-lint: allow(finalize-protocol) -- raw row read, order-independent; noexcept hot path
  [[nodiscard]] const LogRecord& operator[](std::size_t i) const noexcept { return records_[i]; }
  // hpcfail-lint: allow(finalize-protocol) -- raw row access, order-independent; noexcept hot path
  [[nodiscard]] const std::vector<LogRecord>& records() const noexcept { return records_; }

  /// The table resolving every record's detail Symbol.
  // hpcfail-lint: allow(finalize-protocol) -- symbol table is valid before finalize()
  [[nodiscard]] const SymbolTable& symbols() const noexcept { return symbols_; }

  /// Columnar views over the sorted records: times()[i] is
  /// records()[i].time.usec, types()[i] is records()[i].type.  Dense
  /// arrays for scans that only need one field.
  // hpcfail-lint: allow(finalize-protocol) -- empty until finalize() rebuilds the column; never stale
  [[nodiscard]] std::span<const std::int64_t> times() const noexcept { return times_; }
  // hpcfail-lint: allow(finalize-protocol) -- empty until finalize() rebuilds the column; never stale
  [[nodiscard]] std::span<const EventType> types() const noexcept { return types_; }

  /// Interns text into this store's table (for records about to be add()ed).
  // hpcfail-lint: allow(finalize-protocol) -- interning is part of building, pre-finalize by design
  Symbol intern(std::string_view text) { return symbols_.intern(text); }

  /// Resolves a record's detail Symbol; the view is valid while the store
  /// lives.  The record must belong to this store.
  // hpcfail-lint: allow(finalize-protocol) -- symbol lookup is order-independent; noexcept hot path
  [[nodiscard]] std::string_view detail(const LogRecord& r) const noexcept {
    return symbols_.view(r.detail);
  }
  // hpcfail-lint: allow(finalize-protocol) -- symbol lookup is order-independent; noexcept hot path
  [[nodiscard]] std::string_view detail(std::size_t i) const noexcept {
    return symbols_.view(records_[i].detail);
  }

  /// Cheap row accessor bundling a record with its resolved detail — the
  /// `records()[i]`-plus-text view for consumers that want both.
  class Row {
   public:
    Row(const LogStore& store, std::size_t index) noexcept : store_(&store), index_(index) {}
    [[nodiscard]] const LogRecord& record() const noexcept { return store_->records_[index_]; }
    [[nodiscard]] std::string_view detail() const noexcept { return store_->detail(index_); }
    [[nodiscard]] std::size_t index() const noexcept { return index_; }

   private:
    const LogStore* store_;
    std::size_t index_;
  };
  // hpcfail-lint: allow(finalize-protocol) -- bundles two order-independent reads; noexcept hot path
  [[nodiscard]] Row row(std::size_t i) const noexcept { return Row(*this, i); }

  [[nodiscard]] util::TimePoint first_time() const;
  [[nodiscard]] util::TimePoint last_time() const;

  /// All records with begin <= time < end, as a contiguous span.
  [[nodiscard]] std::span<const LogRecord> range(util::TimePoint begin,
                                                 util::TimePoint end) const;

  /// Indexes (into records()) of this node's records within [begin, end).
  /// The span aliases the store's index and is valid while the store lives
  /// and is not re-finalized.
  [[nodiscard]] std::span<const std::uint32_t> node_range(platform::NodeId node,
                                                          util::TimePoint begin,
                                                          util::TimePoint end) const;

  /// Indexes of this blade's records (records carrying that blade id,
  /// including node-scoped records resolved to the blade) within [begin, end).
  [[nodiscard]] std::span<const std::uint32_t> blade_range(platform::BladeId blade,
                                                           util::TimePoint begin,
                                                           util::TimePoint end) const;

  /// Indexes of this cabinet's records within [begin, end).
  [[nodiscard]] std::span<const std::uint32_t> cabinet_range(platform::CabinetId cabinet,
                                                             util::TimePoint begin,
                                                             util::TimePoint end) const;

  /// Indexes of records of `type` within [begin, end).
  [[nodiscard]] std::span<const std::uint32_t> type_range(EventType type, util::TimePoint begin,
                                                          util::TimePoint end) const;

  /// Total count of records of `type`.
  [[nodiscard]] std::size_t count_of_type(EventType type) const;

  /// All record indexes for a node (time-ordered).
  [[nodiscard]] std::span<const std::uint32_t> node_index(platform::NodeId node) const;

  /// All record indexes for an event type (time-ordered).
  [[nodiscard]] std::span<const std::uint32_t> type_index(EventType type) const;

  /// Distinct node ids appearing in the store, sorted (cached at finalize).
  [[nodiscard]] const std::vector<platform::NodeId>& nodes() const;

 private:
  /// Every query funnels through this: querying between add() and
  /// finalize() would silently binary-search unsorted records and read
  /// stale indexes, so it throws std::logic_error instead.  A
  /// default-constructed store is trivially finalized (empty).
  void require_finalized() const;

  void build_indexes();

  /// CSR indexes (util::CsrIndex): entries are record indexes, grouped by
  /// id and time-ordered within each run because the fill pass walks the
  /// sorted records.
  using CsrIndex = util::CsrIndex<std::uint32_t>;

  [[nodiscard]] std::span<const std::uint32_t> filter_window(
      std::span<const std::uint32_t> index, util::TimePoint begin,
      util::TimePoint end) const;

  std::vector<LogRecord> records_;
  SymbolTable symbols_;
  // Query-hot columns, split out of records_ so binary searches touch a
  // dense array of the compared field only (structure-of-arrays).
  std::vector<std::int64_t> times_;  ///< records_[i].time.usec
  std::vector<EventType> types_;    ///< records_[i].type
  CsrIndex by_node_;
  CsrIndex by_blade_;
  CsrIndex by_cabinet_;
  std::vector<std::vector<std::uint32_t>> by_type_;
  std::vector<platform::NodeId> nodes_;  ///< sorted distinct node ids
  bool finalized_ = true;
};

}  // namespace hpcfail::logmodel
