// Temporal failure structure: inter-node failure times, MTBF per window,
// and the dominant-daily-cause analysis (Figs 3, 4, 19; Observation 1).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/root_cause.hpp"
#include "stats/ecdf.hpp"
#include "stats/summary.hpp"

namespace hpcfail::core {

struct WindowStats {
  std::int64_t first_day = 0;      ///< day index of the window start
  std::size_t failures = 0;
  stats::StreamingStats gap_minutes;  ///< inter-failure gaps inside the window
  stats::Ecdf gap_ecdf;
  /// Fraction of gaps at or below the given minutes (0 when no gaps).
  [[nodiscard]] double fraction_within(double minutes) const noexcept {
    return gap_ecdf.empty() ? 0.0 : gap_ecdf.fraction_at_or_below(minutes);
  }
};

struct DominantCauseDay {
  std::int64_t day = 0;            ///< day index (days since epoch)
  std::size_t failures = 0;
  logmodel::RootCause dominant = logmodel::RootCause::Unknown;
  std::size_t dominant_count = 0;
  [[nodiscard]] double dominant_share() const noexcept {
    return failures == 0 ? 0.0
                         : static_cast<double>(dominant_count) / static_cast<double>(failures);
  }
};

class TemporalAnalyzer {
 public:
  explicit TemporalAnalyzer(const std::vector<AnalyzedFailure>& failures)
      : failures_(failures) {}

  /// Gaps (minutes) between consecutive failures in [begin, end); the
  /// machine-wide inter-node failure times of Fig 3.
  [[nodiscard]] std::vector<double> inter_failure_minutes(util::TimePoint begin,
                                                          util::TimePoint end) const;

  /// Per-week statistics over the span (weeks are 7-day windows from
  /// `begin`).  Only failures inside [begin, begin + weeks*7d) count.
  [[nodiscard]] std::vector<WindowStats> weekly_stats(util::TimePoint begin,
                                                      int weeks) const;

  /// Like weekly_stats but only failures passing `keep`.
  [[nodiscard]] std::vector<WindowStats> weekly_stats_filtered(
      util::TimePoint begin, int weeks,
      const std::function<bool(const AnalyzedFailure&)>& keep) const;

  /// Dominant inferred cause per day over [begin, begin + days) (Fig 4).
  /// Days with no failures are omitted.
  [[nodiscard]] std::vector<DominantCauseDay> dominant_cause_per_day(util::TimePoint begin,
                                                                     int days) const;

 private:
  const std::vector<AnalyzedFailure>& failures_;
};

}  // namespace hpcfail::core
