file(REMOVE_RECURSE
  "CMakeFiles/interconnect_report.dir/interconnect_report.cpp.o"
  "CMakeFiles/interconnect_report.dir/interconnect_report.cpp.o.d"
  "interconnect_report"
  "interconnect_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/interconnect_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
