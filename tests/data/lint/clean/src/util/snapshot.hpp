// Fixture: snapshot header whose format version matches FORMATS.md.
#pragma once

#include <cstdint>

inline constexpr std::uint32_t kSnapshotFormatVersion = 1;
