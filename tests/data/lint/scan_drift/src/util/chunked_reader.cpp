// Drifted chunked reader: scans the carry seam byte-at-a-time.
#include <string>

namespace hpcfail::util {

std::size_t seam(const std::string& carry) { return carry.rfind('\n'); }

}  // namespace hpcfail::util
