// Fig 12: job exit-code distribution over 3 days with failures.  Paper:
// 0.06-6.02% of jobs finish with non-zero exit codes while 90.43-95.71%
// complete successfully; most erroneous jobs stem from configuration errors
// (wall-time/memory limits, user kills), leaving few errors caused by node
// problems or application bugs; ~10% of failed nodes correlate with
// application malfunctioning.
#include "bench_common.hpp"
#include "core/job_analysis.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 12: job exit codes (S1, 3 days)");

  const auto p = bench::run_system(platform::SystemName::S1, 3, 1212);
  const core::JobAnalyzer analyzer(p.parsed.jobs, p.failures);
  const auto days = analyzer.daily_outcomes(p.sim.config.begin, 3);

  util::TextTable table({"Day", "jobs", "success", "non-zero", "config-error", "cancelled",
                         "node-caused"});
  for (std::size_t d = 0; d < days.size(); ++d) {
    const auto& day = days[d];
    table.row()
        .cell(static_cast<std::int64_t>(d + 1))
        .cell(static_cast<std::int64_t>(day.jobs))
        .pct(day.success_fraction())
        .pct(day.nonzero_fraction())
        .pct(day.jobs ? static_cast<double>(day.config_error) / day.jobs : 0.0)
        .pct(day.jobs ? static_cast<double>(day.cancelled) / day.jobs : 0.0)
        .pct(day.jobs ? static_cast<double>(day.node_caused) / day.jobs : 0.0);
    check.in_range("day " + std::to_string(d + 1) + ": success (paper 90.43-95.71%)",
                   day.success_fraction(), 0.88, 0.98);
    check.in_range("day " + std::to_string(d + 1) + ": non-zero exits (paper 0.06-6.02%)",
                   day.nonzero_fraction(), 0.0006, 0.0702);
  }
  std::cout << table.render() << '\n';
  return check.exit_code();
}
