# Empty dependencies file for hpcfail_jobs.
# This may be replaced when dependencies are built.
