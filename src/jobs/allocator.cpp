#include "jobs/allocator.hpp"

#include <algorithm>
#include <numeric>

namespace hpcfail::jobs {

NodeAllocator::NodeAllocator(const platform::Topology& topo)
    : topo_(topo), free_at_(topo.node_count(), util::TimePoint{0}) {}

std::vector<platform::NodeId> NodeAllocator::allocate(std::uint32_t count,
                                                      util::TimePoint start,
                                                      util::TimePoint end, AllocPolicy policy,
                                                      util::Rng& rng) {
  std::vector<platform::NodeId> picked;
  if (count == 0 || count > topo_.node_count()) return picked;
  picked.reserve(count);

  auto is_free = [this, start](std::uint32_t node) { return free_at_[node] <= start; };

  if (policy == AllocPolicy::BladePacked) {
    // Walk blades from a random offset, taking whole free blades first.
    const std::uint32_t blades = topo_.blade_count();
    const auto offset = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(blades) - 1));
    for (std::uint32_t step = 0; step < blades && picked.size() < count; ++step) {
      const platform::BladeId blade{(offset + step) % blades};
      for (const auto node : topo_.nodes_on_blade(blade)) {
        if (picked.size() >= count) break;
        if (is_free(node.value)) picked.push_back(node);
      }
    }
  } else {
    // Random scatter: random start, stride coprime with n so the probe
    // visits every node exactly once.
    const std::uint32_t n = topo_.node_count();
    const auto offset =
        static_cast<std::uint32_t>(rng.uniform_int(0, static_cast<std::int64_t>(n) - 1));
    auto stride = static_cast<std::uint32_t>(rng.uniform_int(1, 257));
    while (std::gcd(stride, n) != 1) ++stride;
    for (std::uint32_t step = 0; step < n && picked.size() < count; ++step) {
      const std::uint32_t node = (offset + step * stride) % n;
      if (is_free(node)) picked.push_back(platform::NodeId{node});
    }
  }

  if (picked.size() < count) return {};  // not enough capacity right now
  for (const auto node : picked) free_at_[node.value] = end;
  return picked;
}

void NodeAllocator::release(platform::NodeId node, util::TimePoint at) noexcept {
  if (node.valid() && node.value < free_at_.size()) {
    free_at_[node.value] = std::min(free_at_[node.value], at);
  }
}

std::uint32_t NodeAllocator::free_count(util::TimePoint t) const noexcept {
  std::uint32_t n = 0;
  for (const auto f : free_at_) {
    if (f <= t) ++n;
  }
  return n;
}

}  // namespace hpcfail::jobs
