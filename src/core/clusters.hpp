// Spatio-temporal failure clustering: consecutive failures separated by at
// most `max_gap` form one cluster.  Clusters operationalize Observations 1
// and 8 — bursts share a root cause, and application-triggered bursts span
// spatially distant blades under one job id.
#pragma once

#include <vector>

#include "core/root_cause.hpp"

namespace hpcfail::core {

struct FailureCluster {
  std::size_t first_index = 0;  ///< into the analyzed-failure list
  std::size_t size = 0;
  util::TimePoint begin;
  util::TimePoint end;
  std::size_t distinct_nodes = 0;
  std::size_t distinct_blades = 0;
  std::size_t distinct_cabinets = 0;
  logmodel::RootCause dominant = logmodel::RootCause::Unknown;
  std::size_t dominant_count = 0;
  /// Job id shared by every job-attributed failure in the cluster, or -1.
  std::int64_t shared_job = -1;

  [[nodiscard]] bool same_cause() const noexcept { return dominant_count == size; }
  [[nodiscard]] double dominant_share() const noexcept {
    return size ? static_cast<double>(dominant_count) / static_cast<double>(size) : 0.0;
  }
  [[nodiscard]] util::Duration span() const noexcept { return end - begin; }
};

/// Clusters time-sorted failures by inter-failure gap.
[[nodiscard]] std::vector<FailureCluster> cluster_failures(
    const std::vector<AnalyzedFailure>& failures,
    util::Duration max_gap = util::Duration::minutes(30));

struct ClusterSummary {
  std::size_t clusters = 0;
  std::size_t multi_failure_clusters = 0;  ///< size >= 2
  double mean_size = 0.0;
  double max_size = 0.0;
  /// Of multi-failure clusters: fraction whose failures all share the cause.
  double same_cause_fraction = 0.0;
  /// Of multi-failure clusters with a shared job: fraction spanning >1 blade.
  double shared_job_multi_blade_fraction = 0.0;
};

[[nodiscard]] ClusterSummary summarize_clusters(const std::vector<FailureCluster>& clusters);

}  // namespace hpcfail::core
