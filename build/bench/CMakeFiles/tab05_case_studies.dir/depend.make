# Empty dependencies file for tab05_case_studies.
# This may be replaced when dependencies are built.
