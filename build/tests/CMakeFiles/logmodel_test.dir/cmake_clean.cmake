file(REMOVE_RECURSE
  "CMakeFiles/logmodel_test.dir/logmodel_test.cpp.o"
  "CMakeFiles/logmodel_test.dir/logmodel_test.cpp.o.d"
  "logmodel_test"
  "logmodel_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logmodel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
