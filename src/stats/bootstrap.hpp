// Nonparametric bootstrap confidence intervals.  The paper quotes means with
// error terms (e.g. MTBF 1.5 +/- 0.56 min); the benches attach bootstrap CIs
// to the measured equivalents.
#pragma once

#include <functional>
#include <span>

#include "util/rng.hpp"

namespace hpcfail::stats {

struct BootstrapResult {
  double point = 0.0;  ///< statistic on the original sample
  double lo = 0.0;     ///< lower percentile bound
  double hi = 0.0;     ///< upper percentile bound
};

/// Percentile bootstrap for an arbitrary statistic.
/// `confidence` in (0, 1), e.g. 0.95.
[[nodiscard]] BootstrapResult bootstrap_ci(
    std::span<const double> sample,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples = 1000, double confidence = 0.95,
    util::Rng rng = util::Rng{0x9e3779b97f4a7c15ULL});

/// Bootstrap CI of the mean.
[[nodiscard]] BootstrapResult bootstrap_mean_ci(
    std::span<const double> sample, std::size_t resamples = 1000,
    double confidence = 0.95, util::Rng rng = util::Rng{0x9e3779b97f4a7c15ULL});

}  // namespace hpcfail::stats
