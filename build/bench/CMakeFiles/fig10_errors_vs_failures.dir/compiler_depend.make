# Empty compiler generated dependencies file for fig10_errors_vs_failures.
# This may be replaced when dependencies are built.
