// Application-triggered failure analysis (Section III-E, Figs 12, 15-17,
// 19; Observations 6 and 8): job exit-code distributions, shared-job
// temporal locality of failures, and the memory over-allocation postmortem.
#pragma once

#include <cstdint>
#include <vector>

#include "core/root_cause.hpp"
#include "jobs/job_table.hpp"

namespace hpcfail::core {

/// Fig 12: exit-code classes of jobs ending on one day.
struct DailyJobOutcomes {
  std::int64_t day = 0;
  std::size_t jobs = 0;
  std::size_t success = 0;        ///< exit 0
  std::size_t nonzero = 0;        ///< app returned non-zero (bugs/bad input)
  std::size_t config_error = 0;   ///< wall-time/memory-limit/user config
  std::size_t cancelled = 0;
  std::size_t node_caused = 0;    ///< killed by node problems (137/143)
  [[nodiscard]] double success_fraction() const noexcept {
    return jobs ? static_cast<double>(success) / static_cast<double>(jobs) : 0.0;
  }
  [[nodiscard]] double nonzero_fraction() const noexcept {
    return jobs ? static_cast<double>(nonzero) / static_cast<double>(jobs) : 0.0;
  }
};

/// A group of failures sharing one job id within a short window
/// (Observation 8's temporal locality under a shared application).
struct SharedJobFailureGroup {
  std::int64_t job_id = 0;
  std::size_t failures = 0;
  std::size_t distinct_blades = 0;
  util::Duration span{};  ///< first to last failure in the group
};

/// Fig 17 row: one job of the over-allocation day.
struct OverallocationRow {
  std::int64_t job_id = 0;
  std::size_t allocated = 0;
  std::size_t overallocated = 0;  ///< 0 when the job was not overallocated
  std::size_t failed = 0;
};

class JobAnalyzer {
 public:
  JobAnalyzer(const jobs::JobTable& table, const std::vector<AnalyzedFailure>& failures)
      : table_(table), failures_(failures) {}

  [[nodiscard]] std::vector<DailyJobOutcomes> daily_outcomes(util::TimePoint begin,
                                                             int days) const;

  /// Groups failures by attributed job id; only groups with >= min_failures
  /// within the job's run qualify.
  [[nodiscard]] std::vector<SharedJobFailureGroup> shared_job_groups(
      std::size_t min_failures = 2) const;

  /// Fraction of failures carrying a job attribution whose group spans
  /// multiple blades — "spatially distant, temporally local".
  [[nodiscard]] double multi_blade_shared_job_fraction() const;

  /// Fig 17: per-job allocated / overallocated / failed counts, jobs in
  /// start order.
  [[nodiscard]] std::vector<OverallocationRow> overallocation_report() const;

  /// Failures attributed to jobs, for MTBF-of-job-triggered analysis
  /// (Fig 19).
  [[nodiscard]] std::vector<AnalyzedFailure> job_triggered_failures() const;

 private:
  const jobs::JobTable& table_;
  const std::vector<AnalyzedFailure>& failures_;
};

}  // namespace hpcfail::core
