// The hpcfail-serve wire protocol: line-delimited JSON, one request and
// one response per line (grammar in FORMATS.md "serve protocol", DESIGN.md
// §14).
//
//   request:   {"id":N,"verb":"<verb>","params":{...}}      (params optional)
//   response:  {"id":N,"ok":true,"verb":"<verb>","epoch":E,"data":{...}}
//   error:     {"id":N,"ok":false,"error":{"kind":"<kind>","message":"..."}}
//
// Responses are deterministic byte-for-byte for a given server state and
// request (fixed key order, sorted data keys, no wall-clock fields), which
// is what lets tests/serve_test.cpp pin golden transcripts and the
// snapshot-boot suite prove snapshot and text boots indistinguishable.
//
// A malformed line — truncated JSON, unknown verb, oversized input, a
// degraded byte stream provoked through the serve.request.parse fault site
// — yields a structured error response and leaves the connection (and the
// process) alive; the protocol has no fatal inputs.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "serve/json.hpp"

namespace hpcfail::serve {

/// One protocol verb; `summary` is the FORMATS.md row text (hpcfail-lint's
/// serve-protocol check keeps table and doc in sync, both directions).
struct VerbDef {
  std::string_view verb;
  std::string_view summary;
};

/// The verb table, sorted by verb name.
[[nodiscard]] std::span<const VerbDef> verbs();

[[nodiscard]] bool known_verb(std::string_view verb) noexcept;

/// Largest accepted request line, bytes.  Longer lines are answered with
/// an "oversized" error without being parsed (bounding per-request memory).
inline constexpr std::size_t kMaxRequestBytes = std::size_t{64} * 1024;

enum class ProtocolErrorKind : std::uint8_t {
  BadRequest,   ///< not a JSON object, or a missing/mistyped envelope field
  UnknownVerb,  ///< well-formed envelope, verb not in the table
  BadParams,    ///< verb-specific parameter missing or malformed
  Oversized,    ///< request line exceeds kMaxRequestBytes
  Internal,     ///< handler failed; the connection stays up
};

[[nodiscard]] std::string_view to_string(ProtocolErrorKind kind) noexcept;

struct Request {
  std::uint64_t id = 0;
  std::string verb;
  JsonValue params;  ///< the "params" member; Null when absent
};

/// parse_request's result: exactly one of `request` / error fields is
/// meaningful.  `id` echoes the request id whenever it was recoverable
/// from the malformed line, so clients can still match the error.
struct RequestParse {
  std::optional<Request> request;
  ProtocolErrorKind error = ProtocolErrorKind::BadRequest;
  std::string message;
  std::uint64_t id = 0;

  [[nodiscard]] bool ok() const noexcept { return request.has_value(); }
};

/// Parses one request line.  The serve.request.parse fault site models a
/// degraded client byte stream: when it fires the line is treated as torn
/// and a BadRequest error comes back regardless of content.
[[nodiscard]] RequestParse parse_request(std::string_view line);

/// Success envelope; `data_json` must already be serialized JSON.
[[nodiscard]] std::string ok_response(std::uint64_t id, std::string_view verb,
                                      std::uint64_t epoch, std::string_view data_json);

/// Error envelope.
[[nodiscard]] std::string error_response(std::uint64_t id, ProtocolErrorKind kind,
                                         std::string_view message);

}  // namespace hpcfail::serve
