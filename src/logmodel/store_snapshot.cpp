// LogStore persistence: the store's columns, indexes and symbol table as
// flat sections (util/serialize.hpp) and the save/load endpoints over the
// hpcfail.store.v1 container (util/snapshot.hpp).  Split out of
// log_store.cpp so the query hot path does not pull in file I/O.
#include <cstddef>
#include <cstring>

#include "logmodel/log_store.hpp"

namespace hpcfail::logmodel {

namespace {

// The on-disk record row is the in-memory LogRecord, 48 bytes with two
// padding holes (byte 11, bytes 44..47) that the writer zeroes so files
// are byte-reproducible.  These asserts pin the layout: if a field moves
// or the struct grows, the format version must be bumped and FORMATS.md
// updated, and this build break is the reminder.
static_assert(sizeof(LogRecord) == 48);
static_assert(std::is_standard_layout_v<LogRecord>);
static_assert(offsetof(LogRecord, time) == 0);
static_assert(offsetof(LogRecord, source) == 8);
static_assert(offsetof(LogRecord, type) == 9);
static_assert(offsetof(LogRecord, severity) == 10);
static_assert(offsetof(LogRecord, node) == 12);
static_assert(offsetof(LogRecord, blade) == 16);
static_assert(offsetof(LogRecord, cabinet) == 20);
static_assert(offsetof(LogRecord, job_id) == 24);
static_assert(offsetof(LogRecord, value) == 32);
static_assert(offsetof(LogRecord, detail) == 40);
static_assert(sizeof(util::TimePoint) == 8);
static_assert(sizeof(EventType) == 1 && sizeof(LogSource) == 1 && sizeof(Severity) == 1);
static_assert(sizeof(platform::NodeId) == 4 && sizeof(Symbol) == 4);

/// "store.meta" row: element counts cross-checked against the actual
/// section lengths on load.
struct StoreMeta {
  std::uint64_t records = 0;
  std::uint64_t symbols = 0;
};
static_assert(sizeof(StoreMeta) == 16);

/// Record rows normalized for disk: field-by-field copies into a zeroed
/// buffer, so the padding holes hold 0x00 instead of whatever the heap
/// happened to contain.
std::vector<std::byte> normalized_records(const std::vector<LogRecord>& records) {
  std::vector<std::byte> out(records.size() * sizeof(LogRecord), std::byte{0});
  std::byte* row = out.data();
  for (const LogRecord& r : records) {
    const auto put = [row](std::size_t at, const auto& field) {
      std::memcpy(row + at, &field, sizeof(field));
    };
    put(0, r.time);
    put(8, r.source);
    put(9, r.type);
    put(10, r.severity);
    put(12, r.node);
    put(16, r.blade);
    put(20, r.cabinet);
    put(24, r.job_id);
    put(32, r.value);
    put(40, r.detail);
    row += sizeof(LogRecord);
  }
  return out;
}

void require_entries_in_range(const util::CsrIndex<std::uint32_t>& index,
                              std::size_t n, const std::string& name) {
  for (const std::uint32_t entry : index.entries) {
    if (entry >= n) {
      throw util::SectionError(name + ".entries",
                               "entry " + std::to_string(entry) +
                                   " out of range for " + std::to_string(n) +
                                   " records");
    }
  }
}

}  // namespace

void LogStore::append_sections(util::Sections& out) const {
  require_finalized();
  StoreMeta meta;
  meta.records = records_.size();
  meta.symbols = symbols_.size();
  out.add_scalar("store.meta", meta);
  out.add_owned("store.records", normalized_records(records_));
  out.add_vector("store.times", times_);
  out.add_vector("store.types", types_);
  by_node_.append_sections(out, "store.by_node");
  by_blade_.append_sections(out, "store.by_blade");
  by_cabinet_.append_sections(out, "store.by_cabinet");
  by_type_.append_sections(out, "store.by_type");
  out.add_vector("store.nodes", nodes_);
  symbols_.append_sections(out, "store.symbols");
}

LogStore LogStore::from_sections(const util::SectionMap& in) {
  const auto meta = in.scalar_of<StoreMeta>("store.meta");
  LogStore store;
  store.records_ = in.vector_of<LogRecord>("store.records");
  store.symbols_ = SymbolTable::from_sections(in, "store.symbols");
  store.times_ = in.vector_of<std::int64_t>("store.times");
  store.types_ = in.vector_of<EventType>("store.types");
  store.by_node_ = CsrIndex::from_sections(in, "store.by_node");
  store.by_blade_ = CsrIndex::from_sections(in, "store.by_blade");
  store.by_cabinet_ = CsrIndex::from_sections(in, "store.by_cabinet");
  store.by_type_ = CsrIndex::from_sections(in, "store.by_type");
  store.nodes_ = in.vector_of<platform::NodeId>("store.nodes");

  // Validate everything the query paths take for granted; a snapshot that
  // passed its CRCs can still be adversarially wrong, and the contract is
  // structured rejection, never UB.
  const std::size_t n = store.records_.size();
  if (meta.records != n) {
    throw util::SectionError("store.records",
                             "meta declares " + std::to_string(meta.records) +
                                 " records, section holds " + std::to_string(n));
  }
  if (meta.symbols != store.symbols_.size()) {
    throw util::SectionError("store.symbols.offsets",
                             "meta declares " + std::to_string(meta.symbols) +
                                 " symbols, section holds " +
                                 std::to_string(store.symbols_.size()));
  }
  if (store.times_.size() != n || store.types_.size() != n) {
    throw util::SectionError("store.times", "column lengths disagree with records");
  }
  for (std::size_t i = 0; i < n; ++i) {
    const LogRecord& r = store.records_[i];
    if (store.times_[i] != r.time.usec || store.types_[i] != r.type) {
      throw util::SectionError("store.times",
                               "columns disagree with record " + std::to_string(i));
    }
    if (i > 0 && store.times_[i] < store.times_[i - 1]) {
      throw util::SectionError("store.times", "times decrease at record " +
                                                  std::to_string(i));
    }
    if (static_cast<std::size_t>(r.type) >= kEventTypeCount) {
      throw util::SectionError("store.records",
                               "record " + std::to_string(i) + " has event type " +
                                   std::to_string(static_cast<unsigned>(r.type)) +
                                   " past the enum range");
    }
    if (r.detail.id >= store.symbols_.size()) {
      throw util::SectionError("store.records",
                               "record " + std::to_string(i) +
                                   " references symbol id " +
                                   std::to_string(r.detail.id) + " of " +
                                   std::to_string(store.symbols_.size()));
    }
  }
  require_entries_in_range(store.by_node_, n, "store.by_node");
  require_entries_in_range(store.by_blade_, n, "store.by_blade");
  require_entries_in_range(store.by_cabinet_, n, "store.by_cabinet");
  require_entries_in_range(store.by_type_, n, "store.by_type");
  if (!store.by_type_.offsets.empty() &&
      store.by_type_.offsets.size() != kEventTypeCount + 1) {
    throw util::SectionError("store.by_type.offsets",
                             "expected " + std::to_string(kEventTypeCount + 1) +
                                 " offsets, found " +
                                 std::to_string(store.by_type_.offsets.size()));
  }
  store.finalized_ = true;
  return store;
}

std::optional<util::SnapshotError> LogStore::save(const std::string& path) const {
  require_finalized();
  util::Sections sections;
  append_sections(sections);
  return util::write_snapshot(path, sections);
}

StoreLoadResult LogStore::load(const std::string& path) {
  StoreLoadResult result;
  auto read = util::read_snapshot(path);
  if (!read.ok()) {
    result.error = std::move(read.error);
    return result;
  }
  try {
    result.store = from_sections(read.snapshot->sections());
  } catch (const util::SectionError& e) {
    util::SnapshotError err;
    err.kind = e.kind() == util::SectionError::Kind::Missing
                   ? util::SnapshotError::Kind::MissingSection
                   : util::SnapshotError::Kind::BadSection;
    err.path = path;
    err.section = e.section();
    err.message = e.what();
    result.error = std::move(err);
  }
  return result;
}

}  // namespace hpcfail::logmodel
