// SARIF 2.1.0 rendering for hpcfail-lint reports.
//
// One run, one tool ("hpcfail-lint"), one rule per registered check (ids and
// shortDescriptions from all_checks()), one result per diagnostic.  The
// output is consumed by GitHub code scanning via codeql-action/upload-sarif,
// so the shape follows the sarif-schema-2.1.0 required properties exactly:
// version, $schema, runs[].tool.driver.{name,rules}, runs[].results[] with
// ruleId/level/message/locations.
#pragma once

#include <string>

namespace hpcfail::lint {

struct Report;

/// Renders the report as a SARIF 2.1.0 JSON document (two-space indented,
/// trailing newline).  Severities map Error→"error", Warning→"warning",
/// Note→"note".  Diagnostics whose check is not in the registry (e.g. the
/// CLI's synthetic "usage" errors) still render, with an ad-hoc rule
/// appended after the registered ones.
[[nodiscard]] std::string to_sarif(const Report& report);

}  // namespace hpcfail::lint
