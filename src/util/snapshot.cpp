#include "util/snapshot.hpp"

#include <array>
#include <bit>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "util/fault.hpp"

// The container writes native integers straight to disk and documents the
// file as little-endian; keep the two statements equivalent.
static_assert(std::endian::native == std::endian::little,
              "the hpcfail.store.v1 container writes native-endian integers "
              "and is specified little-endian");

namespace hpcfail::util {

namespace {

constexpr std::size_t kHeaderBytes = 64;
constexpr std::size_t kTableEntryBytes = 64;
constexpr std::size_t kNameField = 40;  // kSnapshotMaxName + NUL
constexpr std::size_t kTrailerBytes = sizeof(std::uint32_t);

/// The read path's single injection point, hit at the bulk read and once
/// per section validated (site names must be textually unique across the
/// tree for the fault-sites lint and the sweep harness).
bool injected_read_failure() {
  return HPCFAIL_FAULT_SITE("store.snapshot.read_io");
}

// On-disk header, one 64-byte row.  Field-by-field writes below keep the
// padding deterministic (zeroed), so files are byte-reproducible.
//   [0,16)  magic          [16,20) version        [20,24) section_count
//   [24,32) file_bytes     [32,36) table_crc      [36,64) zero
//
// Table entry, one 64-byte row per section:
//   [0,40)  name (NUL-padded)   [40,48) offset   [48,56) length
//   [56,60) crc32               [60,64) zero

// The format's checksum is CRC-32C (Castagnoli, reflected polynomial
// 0x82f63b38) rather than the zlib CRC-32: same error-detection class, but
// x86-64 has carried a dedicated instruction for it since SSE4.2.
// Validation runs over every loaded megabyte twice (file CRC + section
// CRCs), so checksum speed directly bounds snapshot_load throughput; the
// hardware path below does ~8 bytes/cycle against ~1 byte/cycle for a
// byte-at-a-time table.  The slice-by-8 software path is the fallback and
// the source of truth for the polynomial.
std::array<std::array<std::uint32_t, 256>, 8> make_crc_tables() {
  std::array<std::array<std::uint32_t, 256>, 8> tables{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) c = (c & 1) ? 0x82f63b38u ^ (c >> 1) : c >> 1;
    tables[0][i] = c;
  }
  for (std::size_t k = 1; k < 8; ++k) {
    for (std::uint32_t i = 0; i < 256; ++i) {
      tables[k][i] = tables[0][tables[k - 1][i] & 0xffu] ^ (tables[k - 1][i] >> 8);
    }
  }
  return tables;
}

std::uint32_t crc32c_soft(std::span<const std::byte> data, std::uint32_t crc) noexcept {
  static const std::array<std::array<std::uint32_t, 256>, 8> tables = make_crc_tables();
  const auto& t = tables;
  const std::byte* p = data.data();
  std::size_t n = data.size();
  while (n >= 8) {
    std::uint32_t lo;
    std::uint32_t hi;
    std::memcpy(&lo, p, 4);
    std::memcpy(&hi, p + 4, 4);
    lo ^= crc;
    crc = t[7][lo & 0xffu] ^ t[6][(lo >> 8) & 0xffu] ^ t[5][(lo >> 16) & 0xffu] ^
          t[4][lo >> 24] ^ t[3][hi & 0xffu] ^ t[2][(hi >> 8) & 0xffu] ^
          t[1][(hi >> 16) & 0xffu] ^ t[0][hi >> 24];
    p += 8;
    n -= 8;
  }
  for (; n != 0; ++p, --n) {
    crc = t[0][(crc ^ static_cast<std::uint8_t>(*p)) & 0xffu] ^ (crc >> 8);
  }
  return crc;
}

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define HPCFAIL_CRC32C_HW 1
__attribute__((target("sse4.2"))) std::uint32_t crc32c_hw(
    std::span<const std::byte> data, std::uint32_t crc) noexcept {
  const std::byte* p = data.data();
  std::size_t n = data.size();
  std::uint64_t c = crc;
  while (n >= 8) {
    std::uint64_t word;
    std::memcpy(&word, p, 8);
    c = __builtin_ia32_crc32di(c, word);
    p += 8;
    n -= 8;
  }
  auto c32 = static_cast<std::uint32_t>(c);
  for (; n != 0; ++p, --n) {
    c32 = __builtin_ia32_crc32qi(c32, static_cast<std::uint8_t>(*p));
  }
  return c32;
}
#endif

std::size_t align_up(std::size_t n) {
  return (n + kSnapshotAlign - 1) & ~(kSnapshotAlign - 1);
}

void put_u32(std::byte* at, std::uint32_t v) { std::memcpy(at, &v, sizeof(v)); }
void put_u64(std::byte* at, std::uint64_t v) { std::memcpy(at, &v, sizeof(v)); }
std::uint32_t get_u32(const std::byte* at) {
  std::uint32_t v;
  std::memcpy(&v, at, sizeof(v));
  return v;
}
std::uint64_t get_u64(const std::byte* at) {
  std::uint64_t v;
  std::memcpy(&v, at, sizeof(v));
  return v;
}

SnapshotError make_error(SnapshotError::Kind kind, const std::string& path,
                         std::string section, std::string message) {
  SnapshotError err;
  err.kind = kind;
  err.path = path;
  err.section = std::move(section);
  err.message = std::move(message);
  return err;
}

}  // namespace

std::uint32_t crc32(std::span<const std::byte> data, std::uint32_t seed) noexcept {
  const std::uint32_t crc = seed ^ 0xffffffffu;
#ifdef HPCFAIL_CRC32C_HW
  static const bool hw = __builtin_cpu_supports("sse4.2");
  if (hw) return crc32c_hw(data, crc) ^ 0xffffffffu;
#endif
  return crc32c_soft(data, crc) ^ 0xffffffffu;
}

std::string_view to_string(SnapshotError::Kind kind) noexcept {
  switch (kind) {
    case SnapshotError::Kind::Io: return "io";
    case SnapshotError::Kind::BadMagic: return "bad-magic";
    case SnapshotError::Kind::BadVersion: return "bad-version";
    case SnapshotError::Kind::Truncated: return "truncated";
    case SnapshotError::Kind::SectionChecksum: return "section-checksum";
    case SnapshotError::Kind::FileChecksum: return "file-checksum";
    case SnapshotError::Kind::MissingSection: return "missing-section";
    case SnapshotError::Kind::BadSection: return "bad-section";
  }
  return "unknown";
}

std::string SnapshotError::to_string() const {
  std::string out(util::to_string(kind));
  out += " error";
  if (!path.empty()) out += " in '" + path + "'";
  if (!section.empty()) out += ", section '" + section + "'";
  if (!message.empty()) out += ": " + message;
  return out;
}

std::optional<SnapshotError> write_snapshot(const std::string& path,
                                            const Sections& sections) {
  // Layout pass: payload offsets, per-section CRCs, total size.
  const std::size_t count = sections.size();
  std::vector<std::uint64_t> offsets(count);
  std::vector<std::uint32_t> crcs(count);
  std::size_t cursor = kHeaderBytes + count * kTableEntryBytes;
  for (std::size_t i = 0; i < count; ++i) {
    const Sections::Entry& e = sections.entries()[i];
    if (e.name.size() > kSnapshotMaxName) {
      return make_error(SnapshotError::Kind::BadSection, path, e.name,
                        "section name exceeds " + std::to_string(kSnapshotMaxName) +
                            " characters");
    }
    cursor = align_up(cursor);
    offsets[i] = cursor;
    crcs[i] = crc32(e.bytes);
    cursor += e.bytes.size();
  }
  const std::uint64_t file_bytes = cursor + kTrailerBytes;

  // Header + table in one zeroed buffer so padding bytes are deterministic.
  std::vector<std::byte> head(kHeaderBytes + count * kTableEntryBytes, std::byte{0});
  std::memcpy(head.data(), kSnapshotMagic, kSnapshotMagicSize);
  put_u32(head.data() + 16, kSnapshotFormatVersion);
  put_u32(head.data() + 20, static_cast<std::uint32_t>(count));
  put_u64(head.data() + 24, file_bytes);
  for (std::size_t i = 0; i < count; ++i) {
    const Sections::Entry& e = sections.entries()[i];
    std::byte* row = head.data() + kHeaderBytes + i * kTableEntryBytes;
    std::memcpy(row, e.name.data(), e.name.size());
    put_u64(row + 40, offsets[i]);
    put_u64(row + 48, e.bytes.size());
    put_u32(row + 56, crcs[i]);
  }
  const std::span<const std::byte> table_bytes(head.data() + kHeaderBytes,
                                               count * kTableEntryBytes);
  put_u32(head.data() + 32, crc32(table_bytes));

  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return make_error(SnapshotError::Kind::Io, path, {}, "cannot open for writing");
  }
  const auto write_run = [&](std::span<const std::byte> bytes,
                             const std::string& section) -> std::optional<SnapshotError> {
    if (HPCFAIL_FAULT_SITE("store.snapshot.write_io")) out.setstate(std::ios::badbit);
    if (!bytes.empty()) {
      out.write(reinterpret_cast<const char*>(bytes.data()),
                static_cast<std::streamsize>(bytes.size()));
    } else {
      out.flush();  // surfaces an injected badbit even for empty sections
    }
    if (!out) {
      return make_error(SnapshotError::Kind::Io, path, section,
                        "write failed at byte offset " +
                            std::to_string(static_cast<long long>(out.tellp())));
    }
    return std::nullopt;
  };

  std::uint32_t running = crc32(head);
  if (auto err = write_run(head, {})) return err;
  static constexpr std::array<std::byte, kSnapshotAlign> kZeros{};
  std::size_t written = head.size();
  for (std::size_t i = 0; i < count; ++i) {
    const Sections::Entry& e = sections.entries()[i];
    const std::size_t pad = offsets[i] - written;
    const std::span<const std::byte> padding(kZeros.data(), pad);
    running = crc32(padding, running);
    running = crc32(e.bytes, running);
    out.write(reinterpret_cast<const char*>(kZeros.data()),
              static_cast<std::streamsize>(pad));
    if (auto err = write_run(e.bytes, e.name)) return err;
    written = offsets[i] + e.bytes.size();
  }

  std::array<std::byte, kTrailerBytes> trailer;
  put_u32(trailer.data(), running);
  if (auto err = write_run(trailer, {})) return err;
  out.flush();
  if (!out) {
    return make_error(SnapshotError::Kind::Io, path, {}, "flush failed");
  }
  return std::nullopt;
}

SnapshotReadResult read_snapshot(const std::string& path) {
  SnapshotReadResult result;
  const auto fail = [&](SnapshotError::Kind kind, std::string section,
                        std::string message) -> SnapshotReadResult {
    result.snapshot.reset();
    result.error = make_error(kind, path, std::move(section), std::move(message));
    return std::move(result);
  };

  std::error_code ec;
  const std::uintmax_t disk_size = std::filesystem::file_size(path, ec);
  if (ec) {
    return fail(SnapshotError::Kind::Io, {}, "cannot stat: " + ec.message());
  }
  if (disk_size < kHeaderBytes + kTrailerBytes) {
    return fail(SnapshotError::Kind::Truncated, {},
                "file is " + std::to_string(disk_size) +
                    " bytes, smaller than the fixed header and trailer");
  }

  Snapshot snap;
  const auto size = static_cast<std::size_t>(disk_size);
  snap.buffer_.reset(static_cast<std::byte*>(
      ::operator new[](size, std::align_val_t{kSnapshotAlign})));
  std::byte* data = snap.buffer_.get();

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return fail(SnapshotError::Kind::Io, {}, "cannot open for reading");
  }
  if (injected_read_failure()) in.setstate(std::ios::badbit);
  in.read(reinterpret_cast<char*>(data), static_cast<std::streamsize>(size));
  if (!in || static_cast<std::size_t>(in.gcount()) != size) {
    return fail(SnapshotError::Kind::Io, {},
                "bulk read returned " + std::to_string(in.gcount()) + " of " +
                    std::to_string(size) + " bytes");
  }

  if (std::memcmp(data, kSnapshotMagic, kSnapshotMagicSize) != 0) {
    return fail(SnapshotError::Kind::BadMagic, {},
                "first 16 bytes are not 'hpcfail.store.v1'");
  }
  // Version is judged before any checksum so a file from a future format
  // reports "bad-version", not a spurious checksum mismatch.
  snap.version_ = get_u32(data + 16);
  if (snap.version_ != kSnapshotFormatVersion) {
    return fail(SnapshotError::Kind::BadVersion, {},
                "format version " + std::to_string(snap.version_) +
                    "; this build reads version " +
                    std::to_string(kSnapshotFormatVersion));
  }
  const std::uint32_t count = get_u32(data + 20);
  snap.file_bytes_ = get_u64(data + 24);
  if (snap.file_bytes_ != size) {
    return fail(SnapshotError::Kind::Truncated, {},
                "header declares " + std::to_string(snap.file_bytes_) +
                    " bytes, file holds " + std::to_string(size));
  }
  const std::uint32_t stored_file_crc = get_u32(data + size - kTrailerBytes);
  const std::uint32_t actual_file_crc =
      crc32(std::span<const std::byte>(data, size - kTrailerBytes));
  if (stored_file_crc != actual_file_crc) {
    return fail(SnapshotError::Kind::FileChecksum, {}, "trailing file CRC mismatch");
  }

  const std::size_t table_end = kHeaderBytes + std::size_t{count} * kTableEntryBytes;
  if (table_end + kTrailerBytes > size) {
    return fail(SnapshotError::Kind::Truncated, {},
                "section table of " + std::to_string(count) +
                    " entries does not fit the file");
  }
  const std::span<const std::byte> table_bytes(data + kHeaderBytes,
                                               table_end - kHeaderBytes);
  if (get_u32(data + 32) != crc32(table_bytes)) {
    return fail(SnapshotError::Kind::SectionChecksum, "(section table)",
                "section table CRC mismatch");
  }

  std::uint64_t previous_end = table_end;
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::byte* row = data + kHeaderBytes + std::size_t{i} * kTableEntryBytes;
    const char* name_field = reinterpret_cast<const char*>(row);
    const std::size_t name_len = ::strnlen(name_field, kNameField);
    if (name_len == 0 || name_len >= kNameField) {
      return fail(SnapshotError::Kind::BadSection, {},
                  "table entry " + std::to_string(i) +
                      " has an empty or unterminated name");
    }
    SnapshotSectionInfo info;
    info.name.assign(name_field, name_len);
    info.offset = get_u64(row + 40);
    info.length = get_u64(row + 48);
    info.crc = get_u32(row + 56);
    if (info.offset % kSnapshotAlign != 0 || info.offset < previous_end ||
        info.length > size - kTrailerBytes ||
        info.offset > size - kTrailerBytes - info.length) {
      return fail(SnapshotError::Kind::BadSection, info.name,
                  "payload extent [" + std::to_string(info.offset) + ", +" +
                      std::to_string(info.length) + ") is misaligned, overlapping "
                      "or out of bounds");
    }
    previous_end = info.offset + info.length;
    const std::span<const std::byte> payload(data + info.offset, info.length);
    if (injected_read_failure()) {
      return fail(SnapshotError::Kind::Io, info.name, "injected section read failure");
    }
    if (crc32(payload) != info.crc) {
      return fail(SnapshotError::Kind::SectionChecksum, info.name,
                  "payload CRC mismatch");
    }
    snap.map_.add(info.name, payload);
    snap.table_.push_back(std::move(info));
  }

  result.snapshot = std::move(snap);
  result.error.reset();
  return result;
}

}  // namespace hpcfail::util
