#include "core/temporal.hpp"

#include <algorithm>
#include <array>

namespace hpcfail::core {

std::vector<double> TemporalAnalyzer::inter_failure_minutes(util::TimePoint begin,
                                                            util::TimePoint end) const {
  std::vector<double> gaps;
  const AnalyzedFailure* prev = nullptr;
  for (const auto& f : failures_) {
    if (f.event.time < begin || f.event.time >= end) continue;
    if (prev != nullptr) {
      gaps.push_back((f.event.time - prev->event.time).to_minutes());
    }
    prev = &f;
  }
  return gaps;
}

std::vector<WindowStats> TemporalAnalyzer::weekly_stats(util::TimePoint begin,
                                                        int weeks) const {
  return weekly_stats_filtered(begin, weeks, [](const AnalyzedFailure&) { return true; });
}

std::vector<WindowStats> TemporalAnalyzer::weekly_stats_filtered(
    util::TimePoint begin, int weeks,
    const std::function<bool(const AnalyzedFailure&)>& keep) const {
  std::vector<WindowStats> out(static_cast<std::size_t>(std::max(0, weeks)));
  std::vector<std::vector<double>> gaps(out.size());
  std::vector<util::TimePoint> last(out.size());
  std::vector<bool> has_last(out.size(), false);

  for (std::size_t w = 0; w < out.size(); ++w) {
    out[w].first_day = (begin + util::Duration::days(static_cast<std::int64_t>(w) * 7))
                           .day_index();
  }
  for (const auto& f : failures_) {
    if (!keep(f)) continue;
    const auto offset = f.event.time - begin;
    if (offset.usec < 0) continue;
    const auto week = offset.usec / util::Duration::days(7).usec;
    if (week < 0 || week >= static_cast<std::int64_t>(out.size())) continue;
    const auto w = static_cast<std::size_t>(week);
    ++out[w].failures;
    if (has_last[w]) {
      const double gap = (f.event.time - last[w]).to_minutes();
      gaps[w].push_back(gap);
      out[w].gap_minutes.add(gap);
    }
    last[w] = f.event.time;
    has_last[w] = true;
  }
  for (std::size_t w = 0; w < out.size(); ++w) {
    out[w].gap_ecdf = stats::Ecdf{gaps[w]};
  }
  return out;
}

std::vector<DominantCauseDay> TemporalAnalyzer::dominant_cause_per_day(util::TimePoint begin,
                                                                       int days) const {
  std::vector<std::array<std::size_t, logmodel::kRootCauseCount>> counts(
      static_cast<std::size_t>(std::max(0, days)));
  for (auto& c : counts) c.fill(0);

  for (const auto& f : failures_) {
    const auto offset = f.event.time - begin;
    if (offset.usec < 0) continue;
    const auto day = offset.usec / util::Duration::days(1).usec;
    if (day < 0 || day >= days) continue;
    ++counts[static_cast<std::size_t>(day)]
            [static_cast<std::size_t>(f.inference.cause)];
  }

  std::vector<DominantCauseDay> out;
  for (int day = 0; day < days; ++day) {
    const auto& c = counts[static_cast<std::size_t>(day)];
    DominantCauseDay d;
    d.day = (begin + util::Duration::days(day)).day_index();
    for (std::size_t i = 0; i < c.size(); ++i) {
      d.failures += c[i];
      if (c[i] > d.dominant_count) {
        d.dominant_count = c[i];
        d.dominant = static_cast<logmodel::RootCause>(i);
      }
    }
    if (d.failures > 0) out.push_back(d);
  }
  return out;
}

}  // namespace hpcfail::core
