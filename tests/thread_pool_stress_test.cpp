// TSan-targeted stress regression suite for the concurrent shard pipeline:
// ThreadPool::submit / parallel_for under contention, exception propagation
// without dangling task references, pool teardown with queued work, and
// concurrent corpus ingestion through the shared default pool.  Run it under
// the `tsan` and `asan` presets; the suite is also fast enough for plain CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail {
namespace {

using util::ThreadPool;

TEST(ThreadPoolStress, ManyThreadsSubmitConcurrently) {
  ThreadPool pool(4);
  constexpr std::size_t kThreads = 8;
  constexpr std::size_t kTasksPerThread = 250;
  std::atomic<std::size_t> executed{0};

  std::vector<std::thread> submitters;
  submitters.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&pool, &executed] {
      std::vector<std::future<void>> futures;
      futures.reserve(kTasksPerThread);
      for (std::size_t i = 0; i < kTasksPerThread; ++i) {
        futures.push_back(pool.submit([&executed] {
          executed.fetch_add(1, std::memory_order_relaxed);
        }));
      }
      for (auto& f : futures) f.get();
    });
  }
  for (auto& s : submitters) s.join();
  EXPECT_EQ(executed.load(), kThreads * kTasksPerThread);
}

TEST(ThreadPoolStress, ParallelForCoversEveryIndexUnderContention) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 20000;
  std::vector<std::atomic<int>> hits(kN);
  pool.parallel_for(kN, [&hits](std::size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// Regression: parallel_for must join EVERY chunk before rethrowing.  The
// task lambdas capture `fn` (and here, `sink`) by reference; before the fix
// an early rethrow let still-queued chunks run against destroyed caller
// state, which ASan reports as stack-use-after-scope and TSan as a race.
TEST(ThreadPoolStress, ExceptionJoinsAllChunksBeforePropagating) {
  ThreadPool pool(4);
  constexpr std::size_t kN = 5000;
  for (int round = 0; round < 20; ++round) {
    std::atomic<std::size_t> entered{0};
    bool threw = false;
    {
      std::vector<char> sink(kN, 0);
      try {
        pool.parallel_for(kN, [&sink, &entered](std::size_t i) {
          entered.fetch_add(1, std::memory_order_relaxed);
          if (i == 0) throw std::runtime_error("boom");
          sink[i] = 1;
        });
      } catch (const std::runtime_error& e) {
        threw = true;
        EXPECT_STREQ(e.what(), "boom");
      }
      // Every chunk has been joined: no task may still be touching `sink`.
      const std::size_t settled = entered.load();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      EXPECT_EQ(entered.load(), settled);
    }  // sink destroyed here; a straggler task would now be a UAF
    EXPECT_TRUE(threw);
  }
}

TEST(ThreadPoolStress, TeardownDrainsQueuedTasks) {
  constexpr std::size_t kTasks = 200;
  std::atomic<std::size_t> executed{0};
  std::vector<std::future<void>> futures;
  futures.reserve(kTasks);
  {
    ThreadPool pool(2);
    for (std::size_t i = 0; i < kTasks; ++i) {
      futures.push_back(pool.submit([&executed] {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        executed.fetch_add(1, std::memory_order_relaxed);
      }));
    }
    // Destructor runs with most tasks still queued; it must drain them all.
  }
  EXPECT_EQ(executed.load(), kTasks);
  for (auto& f : futures) {
    EXPECT_NO_THROW(f.get());
  }
}

TEST(ThreadPoolStress, DefaultPoolSharedAcrossThreads) {
  constexpr std::size_t kThreads = 4;
  constexpr std::size_t kN = 4000;
  std::vector<std::atomic<std::size_t>> sums(kThreads);
  std::vector<std::thread> users;
  users.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    users.emplace_back([t, &sums] {
      util::default_pool().parallel_for(kN, [t, &sums](std::size_t i) {
        sums[t].fetch_add(i, std::memory_order_relaxed);
      });
    });
  }
  for (auto& u : users) u.join();
  const std::size_t expected = kN * (kN - 1) / 2;
  for (std::size_t t = 0; t < kThreads; ++t) {
    EXPECT_EQ(sums[t].load(), expected) << "thread " << t;
  }
}

// Concurrent ingestion: several threads parse the same corpus through the
// shared default pool at once.  Results must be identical run-to-run (the
// shard-per-source pipeline is deterministic regardless of interleaving).
TEST(ThreadPoolStress, ConcurrentCorpusIngestionIsDeterministic) {
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S3, 2, 1234))
          .run();
  const loggen::Corpus corpus = loggen::build_corpus(sim);

  const parsers::ParsedCorpus baseline = parsers::parse_corpus(corpus);

  constexpr std::size_t kThreads = 4;
  std::vector<std::unique_ptr<parsers::ParsedCorpus>> results(kThreads);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (std::size_t t = 0; t < kThreads; ++t) {
    workers.emplace_back([t, &corpus, &results] {
      results[t] = std::make_unique<parsers::ParsedCorpus>(parsers::parse_corpus(corpus));
    });
  }
  for (auto& w : workers) w.join();

  for (std::size_t t = 0; t < kThreads; ++t) {
    ASSERT_NE(results[t], nullptr);
    EXPECT_EQ(results[t]->total_lines, baseline.total_lines);
    EXPECT_EQ(results[t]->skipped_lines, baseline.skipped_lines);
    EXPECT_EQ(results[t]->parsed_records, baseline.parsed_records);
    EXPECT_EQ(results[t]->store.records().size(), baseline.store.records().size());
  }
}

}  // namespace
}  // namespace hpcfail
