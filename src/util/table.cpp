#include "util/table.hpp"

#include <algorithm>
#include <cstdio>

namespace hpcfail::util {

std::string fmt_double(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string fmt_pct(double fraction, int precision) {
  return fmt_double(fraction * 100.0, precision) + "%";
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(double v, int precision) {
  cells_.push_back(fmt_double(v, precision));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::cell(std::int64_t v) {
  cells_.push_back(std::to_string(v));
  return *this;
}

TextTable::RowBuilder& TextTable::RowBuilder::pct(double fraction, int precision) {
  cells_.push_back(fmt_pct(fraction, precision));
  return *this;
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths;
  auto grow = [&widths](const std::vector<std::string>& cells) {
    if (cells.size() > widths.size()) widths.resize(cells.size(), 0);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      widths[i] = std::max(widths[i], cells[i].size());
    }
  };
  grow(headers_);
  for (const auto& r : rows_) grow(r);

  std::string out;
  if (!title_.empty()) {
    out += title_;
    out += '\n';
  }
  auto emit = [&out, &widths](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string{};
      out += c;
      if (i + 1 < widths.size()) out.append(widths[i] - c.size() + 2, ' ');
    }
    out += '\n';
  };
  if (!headers_.empty()) {
    emit(headers_);
    std::size_t total = 0;
    for (std::size_t i = 0; i < widths.size(); ++i) {
      total += widths[i] + (i + 1 < widths.size() ? 2 : 0);
    }
    out.append(total, '-');
    out += '\n';
  }
  for (const auto& r : rows_) emit(r);
  return out;
}

std::string TextTable::render_csv() const {
  auto quote = [](const std::string& s) {
    if (s.find_first_of(",\"\n") == std::string::npos) return s;
    std::string q = "\"";
    for (char c : s) {
      if (c == '"') q += '"';
      q += c;
    }
    q += '"';
    return q;
  };
  std::string out;
  auto emit = [&out, &quote](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i) {
      if (i > 0) out += ',';
      out += quote(cells[i]);
    }
    out += '\n';
  };
  if (!headers_.empty()) emit(headers_);
  for (const auto& r : rows_) emit(r);
  return out;
}

}  // namespace hpcfail::util
