#include "util/thread_pool.hpp"

#include <algorithm>

namespace hpcfail::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn) {
  parallel_for_ranges(n, [&fn](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) fn(i);
  });
}

void ThreadPool::parallel_for_ranges(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& fn) {
  if (n == 0) return;
  // ~4 chunks per worker amortizes imbalance without flooding the queue.
  const std::size_t target_chunks = std::max<std::size_t>(1, workers_.size() * 4);
  const std::size_t chunk = std::max<std::size_t>(1, (n + target_chunks - 1) / target_chunks);
  std::vector<std::future<void>> futures;
  futures.reserve((n + chunk - 1) / chunk);
  for (std::size_t begin = 0; begin < n; begin += chunk) {
    const std::size_t end = std::min(n, begin + chunk);
    futures.push_back(submit([&fn, begin, end] { fn(begin, end); }));
  }
  // Wait for EVERY chunk before rethrowing: the tasks capture `fn` by
  // reference, so returning while chunks are still queued would leave them
  // calling through a dangling reference.  First exception (in chunk order)
  // wins, the rest are swallowed deliberately.
  std::exception_ptr first;
  for (auto& f : futures) {
    try {
      f.get();
    } catch (...) {
      if (!first) first = std::current_exception();
    }
  }
  if (first) std::rethrow_exception(first);
}

ThreadPool& default_pool() {
  static ThreadPool pool;
  return pool;
}

}  // namespace hpcfail::util
