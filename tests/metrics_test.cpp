// Observability contract tests: the metrics registry's semantics under
// concurrency, the RAII trace spans' nesting guarantees, and — via a small
// recursive-descent JSON parser — the exact schemas of both exports
// ("hpcfail.metrics.v1" and the chrome://tracing Trace Event Format).
// These pin what DESIGN.md §6 promises; the determinism side (instrumented
// runs produce byte-identical analysis results) lives in engine_test.cpp
// and ingest_test.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <map>
#include <set>
#include <stdexcept>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "faultsim/scenario.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "support/json.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace {

using hpcfail::test::JsonValue;
using hpcfail::test::parse_json;

using hpcfail::util::Counter;
using hpcfail::util::Gauge;
using hpcfail::util::Histogram;
using hpcfail::util::install_metrics;
using hpcfail::util::install_trace;
using hpcfail::util::MetricsRegistry;
using hpcfail::util::TraceEvent;
using hpcfail::util::TraceRecorder;
using hpcfail::util::TraceSpan;

/// Keeps the process-wide sinks clean even when an assertion fires mid-test.
struct SinkGuard {
  explicit SinkGuard(MetricsRegistry* m = nullptr, TraceRecorder* t = nullptr) {
    install_metrics(m);
    install_trace(t);
  }
  ~SinkGuard() {
    install_metrics(nullptr);
    install_trace(nullptr);
  }
};

// ---------------------------------------------------------------------------
// Registry semantics
// ---------------------------------------------------------------------------

TEST(MetricsRegistry, CounterIsMonotonicAndSnapshotIsNameSorted) {
  MetricsRegistry reg;
  reg.counter("hpcfail.test.beta").add(3);
  reg.counter("hpcfail.test.alpha").increment();
  reg.counter("hpcfail.test.beta").increment();
  EXPECT_EQ(reg.counter("hpcfail.test.beta").value(), 4u);

  const auto snapshot = reg.counters();
  ASSERT_EQ(snapshot.size(), 2u);
  EXPECT_EQ(snapshot[0], (std::pair<std::string, std::uint64_t>{"hpcfail.test.alpha", 1}));
  EXPECT_EQ(snapshot[1], (std::pair<std::string, std::uint64_t>{"hpcfail.test.beta", 4}));
}

TEST(MetricsRegistry, GaugeIsLastWriteWinsWithRelativeAdjustment) {
  MetricsRegistry reg;
  Gauge& g = reg.gauge("hpcfail.test.depth");
  g.set(10);
  g.set(-3);
  EXPECT_EQ(g.value(), -3);
  g.add(5);
  g.add(-1);
  EXPECT_EQ(g.value(), 1);
  EXPECT_EQ(&reg.gauge("hpcfail.test.depth"), &g);
}

TEST(MetricsRegistry, HistogramBucketEdgesAreInclusiveUpperBounds) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("hpcfail.test.latency_us", {1.0, 10.0, 100.0});
  h.observe(1.0);    // on the edge -> bucket 0
  h.observe(-5.0);   // below every edge -> bucket 0
  h.observe(10.0);   // on the edge -> bucket 1
  h.observe(10.5);   // -> bucket 2
  h.observe(1000.0); // past the last edge -> the implicit +inf bucket
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{2, 1, 1, 1}));
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 1016.5);
}

TEST(MetricsRegistry, HistogramReRegistrationWithDifferentBoundsThrows) {
  MetricsRegistry reg;
  Histogram& h = reg.histogram("hpcfail.test.latency_us", {1.0, 10.0});
  // Same bounds (even unsorted / with duplicates) resolve to the same slot.
  EXPECT_EQ(&reg.histogram("hpcfail.test.latency_us", {10.0, 1.0, 10.0}), &h);
  EXPECT_THROW((void)reg.histogram("hpcfail.test.latency_us", {1.0, 20.0}),
               std::logic_error);
}

TEST(MetricsRegistry, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  Counter& c = reg.counter("hpcfail.test.hits");
  Histogram& h = reg.histogram("hpcfail.test.values", {0.5});
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c, &h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.increment();
        h.observe(t % 2 == 0 ? 0.0 : 1.0);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.count(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.counts(), (std::vector<std::uint64_t>{
                            static_cast<std::uint64_t>(kThreads) / 2 * kPerThread,
                            static_cast<std::uint64_t>(kThreads) / 2 * kPerThread}));
}

// ---------------------------------------------------------------------------
// Sink installation and dark-by-default behavior
// ---------------------------------------------------------------------------

TEST(Sinks, DarkByDefaultAndInstallUninstallRoundTrips) {
  EXPECT_EQ(hpcfail::util::metrics(), nullptr);
  EXPECT_EQ(hpcfail::util::trace(), nullptr);
  {
    MetricsRegistry reg;
    TraceRecorder rec;
    SinkGuard guard(&reg, &rec);
    EXPECT_EQ(hpcfail::util::metrics(), &reg);
    EXPECT_EQ(hpcfail::util::trace(), &rec);
  }
  EXPECT_EQ(hpcfail::util::metrics(), nullptr);
  EXPECT_EQ(hpcfail::util::trace(), nullptr);
}

TEST(Sinks, SpansAreInertWhenNoRecorderIsInstalled) {
  TraceRecorder rec;
  {
    TraceSpan dark("hpcfail.test.dark");
    EXPECT_FALSE(dark.active());
  }
  {
    SinkGuard guard(nullptr, &rec);
    TraceSpan lit("hpcfail.test.lit");
    EXPECT_TRUE(lit.active());
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].name, "hpcfail.test.lit");
}

TEST(Sinks, TraceNameSegmentSanitizesRuntimeLabels) {
  EXPECT_EQ(hpcfail::util::trace_name_segment("cause-aggregates"), "cause_aggregates");
  EXPECT_EQ(hpcfail::util::trace_name_segment("Lead Times #1"), "lead_times__1");
  EXPECT_EQ(hpcfail::util::trace_name_segment(""), "unnamed");
}

// ---------------------------------------------------------------------------
// Span nesting
// ---------------------------------------------------------------------------

TEST(TraceSpans, NestedSpansRecordInCompletionOrderAndContainEachOther) {
  TraceRecorder rec;
  SinkGuard guard(nullptr, &rec);
  {
    TraceSpan outer("hpcfail.test.outer");
    {
      TraceSpan inner("hpcfail.test.inner");
    }
    TraceSpan sibling("hpcfail.test.sibling");
  }
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 3u);
  // events() is completion order: inner closes before its parent.
  EXPECT_EQ(events[0].name, "hpcfail.test.inner");
  EXPECT_EQ(events[1].name, "hpcfail.test.sibling");
  EXPECT_EQ(events[2].name, "hpcfail.test.outer");
  const TraceEvent& inner = events[0];
  const TraceEvent& sibling = events[1];
  const TraceEvent& outer = events[2];
  EXPECT_EQ(inner.tid, outer.tid);
  // RAII scoping: both children lie inside [outer.ts, outer.ts + outer.dur].
  for (const TraceEvent* child : {&inner, &sibling}) {
    EXPECT_GE(child->ts_us, outer.ts_us);
    EXPECT_LE(child->ts_us + child->dur_us, outer.ts_us + outer.dur_us);
    EXPECT_GE(child->dur_us, 0);
  }
  EXPECT_GE(sibling.ts_us, inner.ts_us + inner.dur_us);
}

TEST(TraceSpans, ThreadIdsAreDensifiedInFirstSeenOrder) {
  TraceRecorder rec;
  SinkGuard guard(nullptr, &rec);
  {
    TraceSpan main_span("hpcfail.test.main_thread");
  }
  std::thread worker([] { TraceSpan span("hpcfail.test.worker_thread"); });
  worker.join();
  const auto events = rec.events();
  ASSERT_EQ(events.size(), 2u);
  std::map<std::string, std::uint32_t> tid_by_name;
  for (const auto& e : events) tid_by_name[e.name] = e.tid;
  EXPECT_EQ(tid_by_name.at("hpcfail.test.main_thread"), 0u);
  EXPECT_EQ(tid_by_name.at("hpcfail.test.worker_thread"), 1u);
}

// ---------------------------------------------------------------------------
// Export schemas
// ---------------------------------------------------------------------------

TEST(MetricsJson, ExportMatchesSchemaWithSortedKeys) {
  MetricsRegistry reg;
  reg.counter("hpcfail.test.beta").add(7);
  reg.counter("hpcfail.test.alpha").add(2);
  reg.gauge("hpcfail.test.depth").set(-4);
  reg.histogram("hpcfail.test.latency_us", {1.0, 10.0}).observe(3.5);
  reg.histogram("hpcfail.test.latency_us", {1.0, 10.0}).observe(100.0);

  const std::string json = reg.to_json();
  EXPECT_EQ(json, reg.to_json()) << "export must be deterministic";

  const JsonValue root = parse_json(json);
  ASSERT_EQ(root.kind, JsonValue::Kind::Object);
  ASSERT_EQ(root.object.size(), 4u);
  EXPECT_EQ(root.object[0].first, "schema");
  EXPECT_EQ(root.object[1].first, "counters");
  EXPECT_EQ(root.object[2].first, "gauges");
  EXPECT_EQ(root.object[3].first, "histograms");
  EXPECT_EQ(root.find("schema")->text, "hpcfail.metrics.v1");

  const JsonValue& counters = *root.find("counters");
  ASSERT_EQ(counters.object.size(), 2u);
  EXPECT_EQ(counters.object[0].first, "hpcfail.test.alpha");  // keys sorted
  EXPECT_EQ(counters.object[0].second.number, 2.0);
  EXPECT_EQ(counters.object[1].first, "hpcfail.test.beta");
  EXPECT_EQ(counters.object[1].second.number, 7.0);

  EXPECT_EQ(root.find("gauges")->find("hpcfail.test.depth")->number, -4.0);

  const JsonValue* hist = root.find("histograms")->find("hpcfail.test.latency_us");
  ASSERT_NE(hist, nullptr);
  ASSERT_NE(hist->find("bounds"), nullptr);
  ASSERT_NE(hist->find("counts"), nullptr);
  ASSERT_EQ(hist->find("bounds")->array.size(), 2u);
  ASSERT_EQ(hist->find("counts")->array.size(), 3u) << "bounds + the +inf bucket";
  EXPECT_EQ(hist->find("bounds")->array[0].number, 1.0);
  EXPECT_EQ(hist->find("bounds")->array[1].number, 10.0);
  EXPECT_EQ(hist->find("counts")->array[0].number, 0.0);
  EXPECT_EQ(hist->find("counts")->array[1].number, 1.0);
  EXPECT_EQ(hist->find("counts")->array[2].number, 1.0);
  EXPECT_EQ(hist->find("count")->number, 2.0);
  EXPECT_DOUBLE_EQ(hist->find("sum")->number, 103.5);
}

TEST(MetricsJson, NamesWithQuotesAndBackslashesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("odd\"name\\x").increment();  // hpcfail-lint: allow(metric-naming)
  const JsonValue root = parse_json(reg.to_json());
  const JsonValue& counters = *root.find("counters");
  ASSERT_EQ(counters.object.size(), 1u);
  EXPECT_EQ(counters.object[0].first, "odd\"name\\x");
}

/// Validates one parsed chrome trace document: event fields, sort order and
/// the per-thread containment property, returning the set of span names.
std::set<std::string> validate_chrome_trace(const JsonValue& root) {
  EXPECT_EQ(root.kind, JsonValue::Kind::Object);
  const JsonValue* events = root.find("traceEvents");
  EXPECT_NE(events, nullptr);
  EXPECT_EQ(events->kind, JsonValue::Kind::Array);

  std::set<std::string> names;
  struct Interval {
    std::int64_t ts, end;
  };
  std::map<std::int64_t, std::vector<Interval>> stacks;  // tid -> open spans
  std::int64_t prev_ts = -1;
  std::int64_t prev_tid = -1;
  for (const JsonValue& e : events->array) {
    EXPECT_EQ(e.kind, JsonValue::Kind::Object);
    EXPECT_NE(e.find("name"), nullptr);
    names.insert(e.find("name")->text);
    EXPECT_EQ(e.find("cat")->text, "hpcfail");
    EXPECT_EQ(e.find("ph")->text, "X");
    EXPECT_EQ(e.find("pid")->number, 1.0);
    const auto ts = static_cast<std::int64_t>(e.find("ts")->number);
    const auto dur = static_cast<std::int64_t>(e.find("dur")->number);
    const auto tid = static_cast<std::int64_t>(e.find("tid")->number);
    EXPECT_GE(ts, 0);
    EXPECT_GE(dur, 0);
    EXPECT_GE(tid, 0);
    // Stable sort order: (ts, tid) ascending.
    EXPECT_TRUE(ts > prev_ts || (ts == prev_ts && tid >= prev_tid))
        << "events must be sorted by (ts, tid)";
    prev_ts = ts;
    prev_tid = tid;
    // Containment: within one thread, spans nest or are disjoint — never
    // partially overlapping (RAII scoping guarantees this).
    auto& stack = stacks[tid];
    while (!stack.empty() && stack.back().end <= ts) stack.pop_back();
    if (!stack.empty()) {
      EXPECT_LE(ts + dur, stack.back().end)
          << "span " << e.find("name")->text << " partially overlaps its parent";
    }
    stack.push_back(Interval{ts, ts + dur});
  }
  return names;
}

TEST(TraceJson, ExportMatchesChromeTraceSchemaAndEscapes) {
  TraceRecorder rec;
  rec.record("hpcfail.test.with\"quote\\slash", 5, 2);
  rec.record("hpcfail.test.parent", 0, 10);
  rec.record("hpcfail.test.child", 2, 3);
  const JsonValue root = parse_json(rec.to_chrome_json());
  const std::set<std::string> names = validate_chrome_trace(root);
  EXPECT_TRUE(names.count("hpcfail.test.with\"quote\\slash"));
  EXPECT_TRUE(names.count("hpcfail.test.parent"));
  // Sorting puts the parent (ts 0) before both children.
  EXPECT_EQ(root.find("traceEvents")->array[0].find("name")->text,
            "hpcfail.test.parent");
}

// ---------------------------------------------------------------------------
// A real pipeline run under both sinks
// ---------------------------------------------------------------------------

TEST(PipelineObservability, TraceCoversSimulatorEngineAndContextPhases) {
  MetricsRegistry reg;
  TraceRecorder rec;
  hpcfail::core::AnalysisResult result;
  hpcfail::core::AnalysisEngine engine;
  {
    SinkGuard guard(&reg, &rec);
    // Declared after the guard so the pool joins (flushing instrumented
    // task epilogues) before the sinks are uninstalled.
    hpcfail::util::ThreadPool pool(2);
    auto sim = hpcfail::faultsim::Simulator(
                   hpcfail::faultsim::scenario_preset(
                       hpcfail::platform::SystemName::S1, 4, 41))
                   .run();
    const auto corpus = hpcfail::loggen::build_corpus(sim);
    const auto parsed = hpcfail::parsers::parse_corpus(corpus, &pool);
    result = engine.analyze(parsed);
  }

  const std::set<std::string> names = validate_chrome_trace(parse_json(rec.to_chrome_json()));
  EXPECT_TRUE(names.count("hpcfail.sim.run"));
  EXPECT_TRUE(names.count("hpcfail.engine.run"));
  EXPECT_TRUE(names.count("hpcfail.context.type_histogram"));
  EXPECT_TRUE(names.count("hpcfail.context.detect"));
  EXPECT_TRUE(names.count("hpcfail.context.diagnose"));
  EXPECT_TRUE(names.count("hpcfail.context.joins"));
  for (const std::string& analyzer : engine.analyzer_names()) {
    const std::string span =
        "hpcfail.engine.analyzer_" + hpcfail::util::trace_name_segment(analyzer);
    EXPECT_TRUE(names.count(span)) << "missing analyzer span " << span;
  }

  // The simulator's phase counters record its output volumes.  The
  // workload phase emits jobs rather than log records (its counter is a
  // legitimate zero); the failure and scheduler phases both emit records.
  std::map<std::string, std::uint64_t> counters;
  for (const auto& [name, value] : reg.counters()) counters[name] = value;
  ASSERT_TRUE(counters.count("hpcfail.sim.workload_records"));
  ASSERT_TRUE(counters.count("hpcfail.sim.failures_records"));
  EXPECT_GT(counters["hpcfail.sim.failures_records"], 0u);
  ASSERT_TRUE(counters.count("hpcfail.sim.job_log_records"));
  EXPECT_GT(counters["hpcfail.sim.job_log_records"], 0u);
  EXPECT_FALSE(result.failures.empty());
}

}  // namespace
