// Strong identifier types for the machine hierarchy.
//
// A node is addressed three ways, mirroring real Cray systems:
//   - dense index (NodeId) used internally and as the "nid" (nid00042),
//   - physical cname (c1-0c2s7n3) carried by controller/ERD logs,
//   - hostname (node0042) used by the institutional cluster S5.
// Strong types prevent mixing node/blade/cabinet indexes.
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace hpcfail::platform {

template <typename Tag>
struct Id {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = 0xffffffffu;

  constexpr Id() = default;
  constexpr explicit Id(std::uint32_t v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const noexcept { return value != kInvalid; }
  constexpr auto operator<=>(const Id&) const = default;
};

struct NodeTag {};
struct BladeTag {};
struct ChassisTag {};
struct CabinetTag {};

using NodeId = Id<NodeTag>;
using BladeId = Id<BladeTag>;
using ChassisId = Id<ChassisTag>;
using CabinetId = Id<CabinetTag>;

}  // namespace hpcfail::platform

template <typename Tag>
struct std::hash<hpcfail::platform::Id<Tag>> {
  std::size_t operator()(const hpcfail::platform::Id<Tag>& id) const noexcept {
    return std::hash<std::uint32_t>{}(id.value);
  }
};
