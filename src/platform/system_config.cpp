#include "platform/system_config.hpp"

#include <stdexcept>

namespace hpcfail::platform {

std::string SystemConfig::interconnect_name() const {
  switch (interconnect) {
    case InterconnectKind::AriesDragonfly: return "Aries Dragonfly";
    case InterconnectKind::GeminiTorus: return "Gemini Torus";
    case InterconnectKind::Infiniband: return "Infiniband";
  }
  return "?";
}

std::string SystemConfig::scheduler_name() const {
  return scheduler == SchedulerKind::Slurm ? "Slurm" : "Torque";
}

std::string SystemConfig::filesystem_name() const {
  return filesystem == FileSystemKind::Lustre ? "Lustre" : "Local";
}

std::string to_string(SystemName name) {
  switch (name) {
    case SystemName::S1: return "S1";
    case SystemName::S2: return "S2";
    case SystemName::S3: return "S3";
    case SystemName::S4: return "S4";
    case SystemName::S5: return "S5";
  }
  return "?";
}

namespace {

/// Smallest cabinet grid (as square as possible) covering `nodes` nodes for
/// a Cray XC-style cabinet (3 chassis x 16 slots x 4 nodes = 192).
TopologyConfig cray_topology(std::uint32_t nodes) {
  TopologyConfig t;
  t.chassis_per_cabinet = 3;
  t.slots_per_chassis = 16;
  t.nodes_per_slot = 4;
  const std::uint32_t per_cabinet = 3u * 16u * 4u;
  const std::uint32_t cabinets = (nodes + per_cabinet - 1) / per_cabinet;
  // Rows of up to 12 cabinets, mirroring typical machine-room layouts.
  t.cabinet_cols = static_cast<int>(std::min<std::uint32_t>(cabinets, 12));
  t.cabinet_rows =
      static_cast<int>((cabinets + static_cast<std::uint32_t>(t.cabinet_cols) - 1) /
                       static_cast<std::uint32_t>(t.cabinet_cols));
  t.max_nodes = nodes;
  t.naming = NamingScheme::CrayCname;
  return t;
}

/// Institutional cluster: racks of 2 "chassis" x 20 slots x 1 node.
TopologyConfig institutional_topology(std::uint32_t nodes) {
  TopologyConfig t;
  t.chassis_per_cabinet = 2;
  t.slots_per_chassis = 20;
  t.nodes_per_slot = 1;
  const std::uint32_t per_rack = 2u * 20u;
  const std::uint32_t racks = (nodes + per_rack - 1) / per_rack;
  t.cabinet_cols = static_cast<int>(std::min<std::uint32_t>(racks, 8));
  t.cabinet_rows = static_cast<int>((racks + static_cast<std::uint32_t>(t.cabinet_cols) - 1) /
                                    static_cast<std::uint32_t>(t.cabinet_cols));
  t.max_nodes = nodes;
  t.naming = NamingScheme::Hostname;
  return t;
}

}  // namespace

SystemConfig system_preset(SystemName name) {
  SystemConfig c;
  c.name = name;
  c.label = to_string(name);
  switch (name) {
    case SystemName::S1:
      c.machine_type = "Cray XC30";
      c.duration_months = 10;
      c.log_size_gb = 37.3;
      c.nodes = 5600;
      c.interconnect = InterconnectKind::AriesDragonfly;
      c.scheduler = SchedulerKind::Slurm;
      c.filesystem = FileSystemKind::Lustre;
      c.os = "SuSE";
      c.processors = "IvyBridge";
      c.topology = cray_topology(c.nodes);
      break;
    case SystemName::S2:
      c.machine_type = "Cray XE6";
      c.duration_months = 12;
      c.log_size_gb = 150.0;
      c.nodes = 6400;
      c.interconnect = InterconnectKind::GeminiTorus;
      c.scheduler = SchedulerKind::Torque;
      c.filesystem = FileSystemKind::Lustre;
      c.os = "CLE";
      c.processors = "IvyBridge";
      c.topology = cray_topology(c.nodes);
      break;
    case SystemName::S3:
      c.machine_type = "Cray XC40";
      c.duration_months = 8;
      c.log_size_gb = 39.6;
      c.nodes = 2100;
      c.interconnect = InterconnectKind::AriesDragonfly;
      c.scheduler = SchedulerKind::Slurm;
      c.filesystem = FileSystemKind::Lustre;
      c.os = "SuSE";
      c.processors = "Haswell";
      c.has_burst_buffer = true;
      c.topology = cray_topology(c.nodes);
      break;
    case SystemName::S4:
      c.machine_type = "Cray XC40/XC30";
      c.duration_months = 10;
      c.log_size_gb = 22.8;
      c.nodes = 1872;
      c.interconnect = InterconnectKind::AriesDragonfly;
      c.scheduler = SchedulerKind::Torque;
      c.filesystem = FileSystemKind::Lustre;
      c.os = "CLE";
      c.processors = "Haswell/IvyBridge";
      c.has_burst_buffer = true;
      c.topology = cray_topology(c.nodes);
      break;
    case SystemName::S5:
      c.machine_type = "Institutional";
      c.duration_months = 1;
      c.log_size_gb = 3.1;
      c.nodes = 520;
      c.interconnect = InterconnectKind::Infiniband;
      c.scheduler = SchedulerKind::Slurm;
      c.filesystem = FileSystemKind::LocalFs;
      c.os = "RedHat";
      c.processors = "Haswell";
      c.has_gpus = true;
      c.topology = institutional_topology(c.nodes);
      break;
  }
  return c;
}

std::vector<SystemConfig> all_system_presets() {
  return {system_preset(SystemName::S1), system_preset(SystemName::S2),
          system_preset(SystemName::S3), system_preset(SystemName::S4),
          system_preset(SystemName::S5)};
}

}  // namespace hpcfail::platform
