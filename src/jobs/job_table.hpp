// Queryable job metadata table, the analysis-side view of the scheduler
// logs.  Built either directly from simulated jobs or incrementally by the
// scheduler-log parser; answers the correlation queries of Sections III-D/E:
// "which job ran on this node when it failed?" and "which other nodes did
// that job hold?".
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "jobs/job.hpp"
#include "platform/ids.hpp"
#include "util/csr.hpp"
#include "util/time.hpp"

namespace hpcfail::jobs {

struct JobInfo {
  std::int64_t job_id = 0;
  std::int64_t apid = 0;
  std::string user;
  std::string app_name;
  util::TimePoint start;
  util::TimePoint end;
  double mem_per_node_gb = 0.0;
  std::vector<platform::NodeId> nodes;
  int exit_code = 0;
  std::string end_reason;   ///< scheduler Reason= field
  bool ended = false;       ///< end record seen
  bool overallocated = false;
  std::uint32_t overallocated_nodes = 0;
  bool cancelled = false;
};

class JobTable {
 public:
  JobTable() = default;

  /// Builds from fully-simulated jobs (the no-text path).
  [[nodiscard]] static JobTable from_jobs(const std::vector<Job>& jobs);

  // --- incremental construction (parser path) ---
  /// Registers an allocation; replaces any previous entry with the id.
  void add_start(JobInfo info);
  /// Records the end of a job; ignored when the id is unknown.
  void add_end(std::int64_t job_id, util::TimePoint end, int exit_code,
               std::string reason);
  void mark_overallocated(std::int64_t job_id, std::uint32_t node_count);
  void mark_cancelled(std::int64_t job_id);
  /// Builds the per-node interval index. Call once after construction.
  void finalize();

  [[nodiscard]] std::size_t size() const noexcept { return jobs_.size(); }
  [[nodiscard]] const std::vector<JobInfo>& jobs() const noexcept { return jobs_; }
  [[nodiscard]] const JobInfo* find(std::int64_t job_id) const noexcept;

  /// The job holding `node` at time `t` (allocations don't overlap; the
  /// first match wins). `slack` widens the interval on both sides, since a
  /// node's failure records can trail the job's scheduler end record.
  [[nodiscard]] const JobInfo* job_on_node_at(platform::NodeId node, util::TimePoint t,
                                              util::Duration slack = {}) const noexcept;

  /// All jobs whose [start, end) contains `t`.
  [[nodiscard]] std::vector<const JobInfo*> running_at(util::TimePoint t) const;

  /// Registers the table as flat sections under `prefix`: fixed-width
  /// 64-byte job rows, an interned string pool for user/app/reason texts,
  /// the job -> nodes lists as a CSR, and `by_node_` exactly as built
  /// (its per-node runs sort ties arbitrarily, so serializing the index
  /// rather than rebuilding it keeps loaded query results identical).
  /// The table must be finalized.
  void append_sections(util::Sections& out, const std::string& prefix) const;

  /// Rebuilds a finalized table from its sections (by_id_ is re-derived —
  /// it is a plain inverse of the job rows).  Throws util::SectionError on
  /// out-of-range string ids, node lists or index entries.
  [[nodiscard]] static JobTable from_sections(const util::SectionMap& in,
                                              const std::string& prefix);

 private:
  std::vector<JobInfo> jobs_;
  std::unordered_map<std::int64_t, std::size_t> by_id_;
  /// node -> indexes (into jobs_) of jobs touching it, sorted by start.
  /// One uint32 per (node, job) membership — a week of allocations holds
  /// hundreds of thousands, so this is RSS-sensitive.
  util::CsrIndex<std::uint32_t> by_node_;
  bool finalized_ = false;
};

}  // namespace hpcfail::jobs
