file(REMOVE_RECURSE
  "CMakeFiles/fig10_errors_vs_failures.dir/fig10_errors_vs_failures.cpp.o"
  "CMakeFiles/fig10_errors_vs_failures.dir/fig10_errors_vs_failures.cpp.o.d"
  "fig10_errors_vs_failures"
  "fig10_errors_vs_failures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_errors_vs_failures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
