#include "platform/topology.hpp"

#include <stdexcept>

namespace hpcfail::platform {

Topology::Topology(const TopologyConfig& config)
    : config_(config),
      nodes_per_blade_(static_cast<std::uint32_t>(config.nodes_per_slot)),
      blades_per_chassis_(static_cast<std::uint32_t>(config.slots_per_chassis)),
      chassis_per_cabinet_(static_cast<std::uint32_t>(config.chassis_per_cabinet)) {
  if (config.cabinet_cols <= 0 || config.cabinet_rows <= 0 ||
      config.chassis_per_cabinet <= 0 || config.slots_per_chassis <= 0 ||
      config.nodes_per_slot <= 0) {
    throw std::invalid_argument("Topology: all arities must be positive");
  }
  cabinet_count_ =
      static_cast<std::uint32_t>(config.cabinet_cols) * static_cast<std::uint32_t>(config.cabinet_rows);
  chassis_count_ = cabinet_count_ * chassis_per_cabinet_;
  const std::uint32_t full_blades = chassis_count_ * blades_per_chassis_;
  const std::uint32_t full_nodes = full_blades * nodes_per_blade_;
  node_count_ = (config.max_nodes == 0) ? full_nodes : std::min(config.max_nodes, full_nodes);
  // Number of blades actually touched by the populated nodes.
  blade_count_ = (node_count_ + nodes_per_blade_ - 1) / nodes_per_blade_;
}

BladeId Topology::blade_of(NodeId n) const noexcept {
  if (!n.valid() || n.value >= node_count_) return BladeId{};
  return BladeId{n.value / nodes_per_blade_};
}

ChassisId Topology::chassis_of(BladeId b) const noexcept {
  if (!b.valid() || b.value >= blade_count_) return ChassisId{};
  return ChassisId{b.value / blades_per_chassis_};
}

CabinetId Topology::cabinet_of(NodeId n) const noexcept {
  return cabinet_of_blade(blade_of(n));
}

CabinetId Topology::cabinet_of_blade(BladeId b) const noexcept {
  const ChassisId ch = chassis_of(b);
  if (!ch.valid()) return CabinetId{};
  return CabinetId{ch.value / chassis_per_cabinet_};
}

std::vector<NodeId> Topology::nodes_on_blade(BladeId b) const {
  std::vector<NodeId> out;
  if (!b.valid() || b.value >= blade_count_) return out;
  const std::uint32_t first = b.value * nodes_per_blade_;
  for (std::uint32_t i = 0; i < nodes_per_blade_ && first + i < node_count_; ++i) {
    out.push_back(NodeId{first + i});
  }
  return out;
}

NodeId Topology::first_node(BladeId b) const noexcept {
  if (!b.valid() || b.value >= blade_count_) return NodeId{};
  return NodeId{b.value * nodes_per_blade_};
}

Cname Topology::cname_of(NodeId n) const noexcept {
  Cname c = cname_of_blade(blade_of(n));
  if (n.valid() && n.value < node_count_) {
    c.node = static_cast<int>(n.value % nodes_per_blade_);
  }
  return c;
}

Cname Topology::cname_of_blade(BladeId b) const noexcept {
  Cname c;
  if (!b.valid() || b.value >= blade_count_) return c;
  const std::uint32_t chassis_global = b.value / blades_per_chassis_;
  const std::uint32_t cabinet = chassis_global / chassis_per_cabinet_;
  c.slot = static_cast<int>(b.value % blades_per_chassis_);
  c.chassis = static_cast<int>(chassis_global % chassis_per_cabinet_);
  c.cab_x = static_cast<int>(cabinet % static_cast<std::uint32_t>(config_.cabinet_cols));
  c.cab_y = static_cast<int>(cabinet / static_cast<std::uint32_t>(config_.cabinet_cols));
  return c;
}

Cname Topology::cname_of_cabinet(CabinetId cab) const noexcept {
  Cname c;
  if (!cab.valid() || cab.value >= cabinet_count_) return c;
  c.cab_x = static_cast<int>(cab.value % static_cast<std::uint32_t>(config_.cabinet_cols));
  c.cab_y = static_cast<int>(cab.value / static_cast<std::uint32_t>(config_.cabinet_cols));
  return c;
}

std::optional<NodeId> Topology::node_from_cname(const Cname& c) const noexcept {
  if (c.level() != CnameLevel::Node) return std::nullopt;
  const auto blade = blade_from_cname(c.truncated(CnameLevel::Blade));
  if (!blade) return std::nullopt;
  if (c.node < 0 || c.node >= config_.nodes_per_slot) return std::nullopt;
  const std::uint32_t idx = blade->value * nodes_per_blade_ + static_cast<std::uint32_t>(c.node);
  if (idx >= node_count_) return std::nullopt;
  return NodeId{idx};
}

std::optional<BladeId> Topology::blade_from_cname(const Cname& c) const noexcept {
  if (c.level() != CnameLevel::Blade && c.level() != CnameLevel::Node) return std::nullopt;
  if (c.cab_x < 0 || c.cab_x >= config_.cabinet_cols || c.cab_y < 0 ||
      c.cab_y >= config_.cabinet_rows || c.chassis < 0 ||
      c.chassis >= config_.chassis_per_cabinet || c.slot < 0 ||
      c.slot >= config_.slots_per_chassis) {
    return std::nullopt;
  }
  const std::uint32_t cabinet = static_cast<std::uint32_t>(c.cab_y) *
                                    static_cast<std::uint32_t>(config_.cabinet_cols) +
                                static_cast<std::uint32_t>(c.cab_x);
  const std::uint32_t chassis_global =
      cabinet * chassis_per_cabinet_ + static_cast<std::uint32_t>(c.chassis);
  const std::uint32_t idx =
      chassis_global * blades_per_chassis_ + static_cast<std::uint32_t>(c.slot);
  if (idx >= blade_count_) return std::nullopt;
  return BladeId{idx};
}

std::optional<CabinetId> Topology::cabinet_from_cname(const Cname& c) const noexcept {
  if (c.cab_x < 0 || c.cab_x >= config_.cabinet_cols || c.cab_y < 0 ||
      c.cab_y >= config_.cabinet_rows) {
    return std::nullopt;
  }
  const std::uint32_t cabinet = static_cast<std::uint32_t>(c.cab_y) *
                                    static_cast<std::uint32_t>(config_.cabinet_cols) +
                                static_cast<std::uint32_t>(c.cab_x);
  if (cabinet >= cabinet_count_) return std::nullopt;
  return CabinetId{cabinet};
}

std::string Topology::node_name(NodeId n) const {
  if (!n.valid() || n.value >= node_count_) return "nid-invalid";
  return config_.naming == NamingScheme::CrayCname ? format_nid(n.value)
                                                   : format_hostname(n.value);
}

std::optional<NodeId> Topology::node_from_name(std::string_view name) const noexcept {
  const auto idx = config_.naming == NamingScheme::CrayCname ? parse_nid(name)
                                                             : parse_hostname(name);
  if (!idx || *idx >= node_count_) return std::nullopt;
  return NodeId{*idx};
}

int Topology::cabinet_distance(NodeId a, NodeId b) const noexcept {
  const Cname ca = cname_of_cabinet(cabinet_of(a));
  const Cname cb = cname_of_cabinet(cabinet_of(b));
  return std::abs(ca.cab_x - cb.cab_x) + std::abs(ca.cab_y - cb.cab_y);
}

}  // namespace hpcfail::platform
