#include "serve/protocol.hpp"

#include <algorithm>

#include "util/fault.hpp"

namespace hpcfail::serve {

namespace {

// The request/response verb table, sorted by verb.  FORMATS.md's "serve
// protocol" section documents one row per entry; hpcfail-lint's
// serve-protocol check keeps code and doc in sync in both directions, so a
// verb cannot ship undocumented and the doc cannot promise a verb the
// daemon does not answer.
constexpr VerbDef kVerbs[] = {
    {"causes", "root-cause breakdown and layer shares for the analysis window"},
    {"lead_time", "lead-time summary for the analysis window"},
    {"metrics", "metrics registry export, or null when metrics are dark"},
    {"node_health", "online-monitor health for one node (params: node)"},
    {"ping", "liveness probe, answers pong"},
    {"report", "markdown report slice (params: section; omit it to list sections)"},
    {"shutdown", "answer, then stop the serve loop after this request"},
    {"status", "store, window and epoch counters for the daemon"},
};

}  // namespace

std::span<const VerbDef> verbs() { return kVerbs; }

bool known_verb(std::string_view verb) noexcept {
  return std::any_of(std::begin(kVerbs), std::end(kVerbs),
                     [verb](const VerbDef& def) { return def.verb == verb; });
}

std::string_view to_string(ProtocolErrorKind kind) noexcept {
  switch (kind) {
    case ProtocolErrorKind::BadRequest: return "bad_request";
    case ProtocolErrorKind::UnknownVerb: return "unknown_verb";
    case ProtocolErrorKind::BadParams: return "bad_params";
    case ProtocolErrorKind::Oversized: return "oversized";
    case ProtocolErrorKind::Internal: return "internal";
  }
  return "?";
}

RequestParse parse_request(std::string_view line) {
  RequestParse out;
  if (line.size() > kMaxRequestBytes) {
    out.error = ProtocolErrorKind::Oversized;
    out.message = "request line of " + std::to_string(line.size()) +
                  " bytes exceeds the " + std::to_string(kMaxRequestBytes) +
                  "-byte limit";
    return out;
  }
  if (HPCFAIL_FAULT_SITE("serve.request.parse")) {
    out.error = ProtocolErrorKind::BadRequest;
    out.message = "injected parse fault: request bytes torn in flight";
    return out;
  }
  std::optional<JsonValue> doc = JsonValue::parse(line);
  if (!doc.has_value()) {
    out.error = ProtocolErrorKind::BadRequest;
    out.message = "request line is not valid JSON";
    return out;
  }
  if (!doc->is_object()) {
    out.error = ProtocolErrorKind::BadRequest;
    out.message = "request must be a JSON object";
    return out;
  }
  const std::optional<std::uint64_t> id = doc->uint_member("id");
  if (id.has_value()) out.id = *id;
  if (!id.has_value()) {
    out.error = ProtocolErrorKind::BadRequest;
    out.message = "request needs a non-negative integer \"id\"";
    return out;
  }
  const JsonValue* verb = doc->find("verb");
  if (verb == nullptr || !verb->is_string()) {
    out.error = ProtocolErrorKind::BadRequest;
    out.message = "request needs a string \"verb\"";
    return out;
  }
  if (!known_verb(verb->as_string())) {
    out.error = ProtocolErrorKind::UnknownVerb;
    out.message = "unknown verb \"" + verb->as_string() + "\"";
    return out;
  }
  const JsonValue* params = doc->find("params");
  if (params != nullptr && !params->is_object() && !params->is_null()) {
    out.error = ProtocolErrorKind::BadRequest;
    out.message = "\"params\" must be an object when present";
    return out;
  }
  Request req;
  req.id = *id;
  req.verb = verb->as_string();
  if (params != nullptr) req.params = *params;
  out.request = std::move(req);
  return out;
}

std::string ok_response(std::uint64_t id, std::string_view verb, std::uint64_t epoch,
                        std::string_view data_json) {
  std::string out;
  out.reserve(64 + data_json.size());
  out += "{\"id\":";
  append_json_number(out, id);
  out += ",\"ok\":true,\"verb\":";
  append_json_string(out, verb);
  out += ",\"epoch\":";
  append_json_number(out, epoch);
  out += ",\"data\":";
  out += data_json;
  out += "}";
  return out;
}

std::string error_response(std::uint64_t id, ProtocolErrorKind kind,
                           std::string_view message) {
  std::string out;
  out.reserve(64 + message.size());
  out += "{\"id\":";
  append_json_number(out, id);
  out += ",\"ok\":false,\"error\":{\"kind\":";
  append_json_string(out, to_string(kind));
  out += ",\"message\":";
  append_json_string(out, message);
  out += "}}";
  return out;
}

}  // namespace hpcfail::serve
