# Empty compiler generated dependencies file for fig05_nvf_nhf.
# This may be replaced when dependencies are built.
