// Minimal consistent serve verb table for the clean fixture tree.
namespace hpcfail::serve {
namespace {
constexpr VerbDef kVerbs[] = {
    {"ping", "liveness probe, answers pong"},
    {"status", "store, window and epoch counters for the daemon"},
};
}  // namespace
}  // namespace hpcfail::serve
