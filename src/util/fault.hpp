#pragma once
// Deterministic pipeline fault injection (tsuba FaultTest style).
//
// A *fault site* is a named point in production code where a failure can be
// provoked on demand:
//
//   if (HPCFAIL_FAULT_SITE("ingest.read.badbit")) in_.setstate(std::ios::badbit);
//
// The macro answers "should this site fire on this hit?".  The site decides
// what the fault *is* (a torn chunk, a stream badbit, a std::bad_alloc...);
// the injector only decides *when*.  Cost discipline, same as the metrics
// layer (util/metrics.hpp): with no injector installed a site is one relaxed
// atomic load plus a predictable branch — no locks, no clock reads, no
// allocation — so sites can sit on the ingest hot path permanently.
//
// Arming:
//   - programmatic: FaultInjector inj; inj.arm("ingest.read.badbit", 2);
//     install_fault_injector(&inj);  ... run ...  install_fault_injector(nullptr);
//   - schedule spec (the HPCFAIL_FAULT env grammar, also hpcfail-ingest
//     --fault): "<site>[:<n>][,<site>[:<n>]...]" — fire the n-th hit of each
//     listed site (1-based; ":<n>" defaults to 1).  Example:
//       HPCFAIL_FAULT=ingest.read.torn_chunk:3,store.append_batch.bad_alloc
//
// Each armed site fires exactly once, on its n-th hit; hits are counted per
// injector, so a fresh FaultInjector per run gives deterministic schedules.
// (Sites on serialized paths — the chunk reader, FIFO retirement, the
// writers — hit in a fixed order; a site inside a pool-parallel parse task
// fires on *some* n-th hit under pool scheduling.)
//
// Site names follow the metric-name style: lowercase snake_case dot
// segments, `<layer>.<component>.<kind>`.  Every HPCFAIL_FAULT_SITE literal
// in the tree must appear in FaultInjector::sites() (the sweep harness in
// tests/faultinject_test.cpp enumerates that inventory) — hpcfail-lint's
// fault-sites check keeps the two in sync and the names unique.
//
// When a site fires and a MetricsRegistry is installed, the injector bumps
// `hpcfail.fault.injected` plus the per-layer counter
// `hpcfail.<layer>.faults_injected` (layer = first site-name segment), so a
// faulted run is visible in the same metrics export the tests assert on.

#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::util {

/// Deterministic schedule of named fault points.  Thread-safe: hit counting
/// takes a mutex, which is acceptable because an injector is only installed
/// in tests and fault-repro runs (the dark path never reaches it).
class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Arms `site` to fire on its `nth` hit (1-based; 0 is clamped to 1).
  /// Unknown site names throw std::invalid_argument — sites() is the source
  /// of truth, so a typo cannot silently arm nothing.
  void arm(std::string_view site, std::uint64_t nth = 1);

  /// Parses and arms a "<site>[:<n>][,<site>[:<n>]...]" spec (the
  /// HPCFAIL_FAULT grammar).  Throws std::invalid_argument on malformed
  /// specs or unknown sites.
  void arm_spec(std::string_view spec);

  /// Called (via fault_should_fire) on every hit of an armed-or-not site;
  /// returns true exactly when this hit is the scheduled n-th of an armed
  /// site that has not fired yet.
  [[nodiscard]] bool hit(std::string_view site) noexcept;

  /// Hits observed for `site` since arming (0 when not armed: unarmed sites
  /// are not tracked — they cost nothing to pass through).
  [[nodiscard]] std::uint64_t hits(std::string_view site) const;
  /// 1 once the armed site has fired, else 0.
  [[nodiscard]] std::uint64_t fires(std::string_view site) const;
  [[nodiscard]] std::uint64_t total_fires() const;

  /// "site fired after N hits" lines for every armed site (FaultTestReport
  /// flavor), for the CLI's post-run summary.
  [[nodiscard]] std::vector<std::string> summary() const;

  /// The static inventory of every HPCFAIL_FAULT_SITE in the tree, sorted.
  /// The sweep harness arms each entry one at a time; hpcfail-lint's
  /// fault-sites check fails if code and inventory drift.
  [[nodiscard]] static std::span<const std::string_view> sites();

 private:
  struct SiteState {
    std::uint64_t nth = 1;
    std::uint64_t hits = 0;
    bool fired = false;
  };

  mutable std::mutex mutex_;
  std::map<std::string, SiteState, std::less<>> armed_;
};

/// Installs `injector` as the process-wide schedule (nullptr disarms).  The
/// caller keeps ownership and must keep it alive — and drain any pool
/// running instrumented tasks — until after uninstalling.
void install_fault_injector(FaultInjector* injector) noexcept;

/// The installed injector, or nullptr when fault injection is dark.
[[nodiscard]] FaultInjector* fault_injector() noexcept;

/// The macro body: one relaxed atomic load when dark; otherwise asks the
/// injector and, on fire, bumps the fault metrics counters.
[[nodiscard]] bool fault_should_fire(const char* site) noexcept;

}  // namespace hpcfail::util

/// Marks a named fault point; evaluates to true when the site fires now.
/// The enclosing code performs the actual fault (setstate, throw, garble).
#define HPCFAIL_FAULT_SITE(site) (::hpcfail::util::fault_should_fire(site))
