// Fixture: ERD table with a drifted event name and a mismatched type.
#include "loggen/renderer.hpp"

namespace hpcfail::loggen {

std::string_view erd_event_name(EventType t) noexcept {
  switch (t) {
    case EventType::NodeHeartbeatFault: return "ec_node_failed";
    case EventType::NodeVoltageFault: return "ec_node_voltage_falt";
    case EventType::LinkError: return "ec_link_error";
    default: return "ec_event";
  }
}

}  // namespace hpcfail::loggen
