# Empty dependencies file for hpcfail_sensors.
# This may be replaced when dependencies are built.
