// Drifted corpus file-name table: a typo'd messages name, and the erd
// entry the documentation promises is missing entirely.
namespace hpcfail::loggen {
namespace {
constexpr std::array<std::string_view, 3> kFileNames = {
    "p0-console.log", "p0-mesages.log",
    "scheduler.log"};
}  // namespace
}  // namespace hpcfail::loggen
