// Fig 5: fraction of node voltage faults (NVF) and node heartbeat faults
// (NHF) that correspond to failed nodes, over 5 months (S1).  Paper: NVFs
// are rare but 67-97% of them relate to failures; only 21-64% of NHFs
// manifest as failures (Observation 2).
#include <algorithm>

#include "bench_common.hpp"
#include "core/external_correlator.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 5: NVF/NHF failure correspondence (S1, 5 months)");

  const auto p = bench::run_system(platform::SystemName::S1, 150, 505);
  const core::ExternalCorrelator correlator(p.parsed.store, p.failures);

  util::TextTable table({"Month", "NVFs", "NVF->failure", "NHFs", "NHF->failure"});
  std::vector<double> nvf_fracs, nhf_fracs;
  for (int month = 0; month < 5; ++month) {
    const util::TimePoint begin = p.sim.config.begin + util::Duration::days(month * 30);
    const util::TimePoint end = begin + util::Duration::days(30);
    const auto nvf =
        correlator.correspondence(logmodel::EventType::NodeVoltageFault, begin, end);
    const auto nhf =
        correlator.correspondence(logmodel::EventType::NodeHeartbeatFault, begin, end);
    table.row()
        .cell("M" + std::to_string(month + 1))
        .cell(static_cast<std::int64_t>(nvf.faults))
        .pct(nvf.fraction())
        .cell(static_cast<std::int64_t>(nhf.faults))
        .pct(nhf.fraction());
    if (nvf.faults > 0) nvf_fracs.push_back(nvf.fraction());
    if (nhf.faults > 0) nhf_fracs.push_back(nhf.fraction());
  }
  std::cout << table.render() << '\n';

  const auto [nvf_lo, nvf_hi] = std::minmax_element(nvf_fracs.begin(), nvf_fracs.end());
  const auto [nhf_lo, nhf_hi] = std::minmax_element(nhf_fracs.begin(), nhf_fracs.end());
  check.in_range("NVF correspondence, min month (paper 67%)", *nvf_lo, 0.55, 1.0);
  check.in_range("NVF correspondence, max month (paper 97%)", *nvf_hi, 0.67, 1.0);
  check.in_range("NHF correspondence, min month (paper 21%)", *nhf_lo, 0.15, 0.64);
  check.in_range("NHF correspondence, max month (paper 64%)", *nhf_hi, 0.21, 0.80);
  check.greater("NVFs correspond to failures more than NHFs do",
                *nvf_lo, *nhf_hi * 0.9);
  return check.exit_code();
}
