file(REMOVE_RECURSE
  "libhpcfail_util.a"
)
