#pragma once

namespace hpcfail::logmodel {

enum class EventType : unsigned char {
  NodeHeartbeatFault,
  NodeVoltageFault,
  LinkError,
  LaneDegrade,
  kCount
};

}  // namespace hpcfail::logmodel
