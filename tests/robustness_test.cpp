// Robustness to logging discrepancies (the paper's challenge 1): degraded
// corpora — random line loss, corruption, missing time windows, absent
// sources — must degrade the analysis gracefully, never crash it.
#include <gtest/gtest.h>

#include "core/analysis_context.hpp"
#include "core/leadtime.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "loggen/degrade.hpp"
#include "parsers/corpus_parser.hpp"

namespace hpcfail {
namespace {

/// Detection + diagnosis over the parsed corpus's full extent.
std::vector<core::AnalyzedFailure> diagnose_all(const parsers::ParsedCorpus& parsed) {
  const core::AnalysisContext ctx(
      parsed.store, &parsed.jobs, parsed.store.first_time(),
      parsed.store.last_time() + util::Duration::microseconds(1));
  return ctx.failures();
}

struct Baseline {
  faultsim::SimulationResult sim;
  loggen::Corpus corpus;
  std::size_t failures;
};

const Baseline& baseline() {
  static const Baseline b = [] {
    auto sim =
        faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 7, 606))
            .run();
    auto corpus = loggen::build_corpus(sim);
    const auto parsed = parsers::parse_corpus(corpus);
    const auto failures = diagnose_all(parsed);
    return Baseline{std::move(sim), std::move(corpus), failures.size()};
  }();
  return b;
}

std::size_t detect_on(const loggen::Corpus& corpus) {
  const auto parsed = parsers::parse_corpus(corpus);
  return diagnose_all(parsed).size();
}

TEST(RobustnessTest, RandomLineLossDegradesGracefully) {
  loggen::DegradeConfig cfg;
  cfg.drop_line_fraction = 0.10;
  const auto degraded = loggen::degrade_corpus(baseline().corpus, cfg);
  const std::size_t found = detect_on(degraded);
  // 10% line loss may drop some markers but most failures survive.
  EXPECT_GT(found, baseline().failures * 7 / 10);
  EXPECT_LE(found, baseline().failures + 2);
}

TEST(RobustnessTest, HeavyCorruptionNeverCrashes) {
  loggen::DegradeConfig cfg;
  cfg.corrupt_line_fraction = 0.5;
  const auto degraded = loggen::degrade_corpus(baseline().corpus, cfg);
  const auto parsed = parsers::parse_corpus(degraded);
  EXPECT_GT(parsed.skipped_lines, 0u);  // corruption rejects some lines
  const auto failures = diagnose_all(parsed);
  EXPECT_GT(failures.size(), 0u);
}

TEST(RobustnessTest, MissingTimeWindowRemovesThoseFailures) {
  const auto& b = baseline();
  loggen::DegradeConfig cfg;
  cfg.gap_begin = b.corpus.begin + util::Duration::days(2);
  cfg.gap_end = b.corpus.begin + util::Duration::days(4);
  const auto degraded = loggen::degrade_corpus(b.corpus, cfg);
  const auto parsed = parsers::parse_corpus(degraded);
  // The gap is empty of records.
  EXPECT_TRUE(parsed.store.range(*cfg.gap_begin, *cfg.gap_end).empty());
  // Failures outside the gap still detected.
  const auto failures = diagnose_all(parsed);
  std::size_t planted_outside = 0;
  for (const auto& f : b.sim.truth.failures) {
    if (f.fail_time < *cfg.gap_begin || f.fail_time >= *cfg.gap_end) ++planted_outside;
  }
  EXPECT_GT(failures.size(), planted_outside * 8 / 10);
}

TEST(RobustnessTest, DroppingExternalSourcesKillsLeadTimeOnly) {
  loggen::DegradeConfig cfg;
  cfg.drop_source[static_cast<std::size_t>(logmodel::LogSource::Erd)] = true;
  cfg.drop_source[static_cast<std::size_t>(logmodel::LogSource::Controller)] = true;
  const auto degraded = loggen::degrade_corpus(baseline().corpus, cfg);
  const auto parsed = parsers::parse_corpus(degraded);
  const auto failures = diagnose_all(parsed);
  // Detection barely changes (it is internal-log driven)...
  EXPECT_GT(failures.size(), baseline().failures * 9 / 10);
  // ...but without the external universe no lead-time enhancement exists
  // (the S5 situation, Observation 5).
  const core::LeadTimeAnalyzer analyzer(parsed.store);
  EXPECT_EQ(analyzer.summarize(failures).enhanceable, 0u);
}

TEST(RobustnessTest, DegradeIsDeterministic) {
  loggen::DegradeConfig cfg;
  cfg.drop_line_fraction = 0.2;
  cfg.corrupt_line_fraction = 0.1;
  cfg.seed = 7;
  const auto a = loggen::degrade_corpus(baseline().corpus, cfg);
  const auto b = loggen::degrade_corpus(baseline().corpus, cfg);
  for (std::size_t s = 0; s < a.text.size(); ++s) {
    EXPECT_EQ(a.text[s], b.text[s]);
  }
}

}  // namespace
}  // namespace hpcfail
