#include "jobs/app_catalog.hpp"

#include <stdexcept>

namespace hpcfail::jobs {

AppCatalog AppCatalog::standard() {
  std::vector<AppProfile> apps;
  // Benign, popular production codes: nearly all runs complete.
  apps.push_back({.name = "namd",       .popularity = 10, .mem_hunger_gb = 12,
                  .p_oom = 0.001, .p_fs_bug = 0.001, .p_kernel_bug = 0.0005,
                  .p_abnormal_exit = 0.002, .p_nonzero_exit = 0.015, .p_config_error = 0.008});
  apps.push_back({.name = "lammps",     .popularity = 9,  .mem_hunger_gb = 10,
                  .p_oom = 0.001, .p_fs_bug = 0.001, .p_kernel_bug = 0.0005,
                  .p_abnormal_exit = 0.002, .p_nonzero_exit = 0.015, .p_config_error = 0.008});
  apps.push_back({.name = "wrf",        .popularity = 7,  .mem_hunger_gb = 24,
                  .p_oom = 0.004, .p_fs_bug = 0.003, .p_kernel_bug = 0.001,
                  .p_abnormal_exit = 0.004, .p_nonzero_exit = 0.02, .p_config_error = 0.01});
  apps.push_back({.name = "vasp",       .popularity = 8,  .mem_hunger_gb = 28,
                  .p_oom = 0.005, .p_fs_bug = 0.002, .p_kernel_bug = 0.001,
                  .p_abnormal_exit = 0.004, .p_nonzero_exit = 0.02, .p_config_error = 0.01});
  apps.push_back({.name = "qe",         .popularity = 5,  .mem_hunger_gb = 20,
                  .p_oom = 0.003, .p_fs_bug = 0.002, .p_kernel_bug = 0.001,
                  .p_abnormal_exit = 0.003, .p_nonzero_exit = 0.02, .p_config_error = 0.01});
  // Risky codes: IO-heavy (Lustre contention), memory-hungry (OOM chains)
  // and one buggy in-development code (kernel-path bugs).
  apps.push_back({.name = "hydro_io",   .popularity = 3,  .mem_hunger_gb = 30,
                  .p_oom = 0.01,  .p_fs_bug = 0.05,  .p_kernel_bug = 0.004,
                  .p_abnormal_exit = 0.02, .p_nonzero_exit = 0.03, .p_config_error = 0.012});
  apps.push_back({.name = "genomics_mem", .popularity = 2, .mem_hunger_gb = 58,
                  .p_oom = 0.07,  .p_fs_bug = 0.01,  .p_kernel_bug = 0.002,
                  .p_abnormal_exit = 0.03, .p_nonzero_exit = 0.04, .p_config_error = 0.02});
  apps.push_back({.name = "devcode_x",  .popularity = 1,  .mem_hunger_gb = 16,
                  .p_oom = 0.02,  .p_fs_bug = 0.02,  .p_kernel_bug = 0.03,
                  .p_abnormal_exit = 0.06, .p_nonzero_exit = 0.08, .p_config_error = 0.03});
  apps.push_back({.name = "matlab_batch", .popularity = 2, .mem_hunger_gb = 40,
                  .p_oom = 0.03,  .p_fs_bug = 0.003, .p_kernel_bug = 0.001,
                  .p_abnormal_exit = 0.02, .p_nonzero_exit = 0.05, .p_config_error = 0.025});
  return AppCatalog(std::move(apps));
}

AppCatalog::AppCatalog(std::vector<AppProfile> apps) : apps_(std::move(apps)) {
  if (apps_.empty()) throw std::invalid_argument("AppCatalog: empty");
  weights_.reserve(apps_.size());
  for (const auto& a : apps_) weights_.push_back(a.popularity);
}

const AppProfile& AppCatalog::sample(util::Rng& rng) const {
  return apps_[rng.weighted_index(weights_)];
}

const AppProfile* AppCatalog::find(std::string_view name) const noexcept {
  for (const auto& a : apps_) {
    if (a.name == name) return &a;
  }
  return nullptr;
}

}  // namespace hpcfail::jobs
