// Scheduler-side job model: what Slurm/Torque knows about a job.  The fault
// simulator consumes these to drive application-triggered failure chains and
// writes back the final outcome; the scheduler log generator renders them.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "platform/ids.hpp"
#include "util/time.hpp"

namespace hpcfail::jobs {

enum class JobOutcome : std::uint8_t {
  Completed,      ///< exit 0
  NonZeroExit,    ///< application returned non-zero (app bug / bad input)
  ConfigError,    ///< wall-time / memory-limit exceeded, bad submission
  UserCancelled,  ///< scancel / interactive cancellation
  OomKilled,      ///< oom-killer terminated the job's processes
  NodeFailure,    ///< a node allocated to the job failed under it
  Overallocated,  ///< scheduler over-allocated memory; job died on the node
};

[[nodiscard]] std::string_view to_string(JobOutcome o) noexcept;

/// Exit code the scheduler records for an outcome (Fig 12's breakdown).
[[nodiscard]] int exit_code_for(JobOutcome o) noexcept;

struct Job {
  std::int64_t job_id = 0;
  std::int64_t apid = 0;  ///< ALPS application id; equal jobs share an apid
  std::string user;
  std::string app_name;
  util::TimePoint submit;
  util::TimePoint start;
  util::TimePoint end;  ///< actual end (set by the simulator)
  util::Duration walltime_limit{};
  double mem_per_node_gb = 0.0;  ///< requested memory per node
  std::vector<platform::NodeId> nodes;
  JobOutcome outcome = JobOutcome::Completed;
  /// Nodes whose memory the scheduler over-committed (Fig 17's bug); only
  /// meaningful when outcome == Overallocated.
  std::uint32_t overallocated_nodes = 0;

  [[nodiscard]] int exit_code() const noexcept { return exit_code_for(outcome); }
  [[nodiscard]] bool failed() const noexcept { return outcome != JobOutcome::Completed; }
};

}  // namespace hpcfail::jobs
