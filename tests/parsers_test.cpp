// Unit and property tests for src/parsers: line classifiers, per-source
// parsers, scheduler parsing, and parser totality under mutation (fuzz).
#include <gtest/gtest.h>

#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/line_classifier.hpp"
#include "parsers/source_parsers.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpcfail::parsers {
namespace {

using logmodel::EventType;

platform::Topology s1_topology() {
  return platform::Topology(platform::system_preset(platform::SystemName::S1).topology);
}

// ------------------------------------------------------------ classifier ----

struct ClassifyCase {
  const char* payload;
  EventType expected;
};

class KernelClassify : public ::testing::TestWithParam<ClassifyCase> {};

TEST_P(KernelClassify, MapsToExpectedType) {
  const auto result = classify_kernel_payload(GetParam().payload);
  ASSERT_TRUE(result.has_value()) << GetParam().payload;
  EXPECT_EQ(result->type, GetParam().expected) << GetParam().payload;
}

INSTANTIATE_TEST_SUITE_P(
    Signatures, KernelClassify,
    ::testing::Values(
        ClassifyCase{"Kernel panic - not syncing: Fatal machine check",
                     EventType::KernelPanic},
        // LBUG must win over the generic LustreError signature.
        ClassifyCase{"LustreError: LBUG - ASSERTION failed: race", EventType::LustreBug},
        ClassifyCase{"LustreError: 11-0: ost_write failed", EventType::LustreError},
        // Processor-context-corrupt must win over plain MCE.
        ClassifyCase{"mce: [Hardware Error]: PCC processor context corrupt: x",
                     EventType::CpuCorruption},
        ClassifyCase{"mce: [Hardware Error]: Machine check events logged: bank 4",
                     EventType::MachineCheckException},
        ClassifyCase{"EDAC MC0: correctable error", EventType::HardwareError},
        ClassifyCase{"INFO: rcu_sched self-detected stall on CPU: 3", EventType::CpuStall},
        ClassifyCase{"HEST: type:2; severity:80; class:3; subclass:D; operation:2",
                     EventType::BiosError},
        ClassifyCase{"[Firmware Bug]: cpu offline map", EventType::FirmwareBug},
        ClassifyCase{"app[31337]: segfault at 0 ip 00007f err 4: binary",
                     EventType::SegFault},
        ClassifyCase{"invalid opcode: 0000 [#1] SMP: devcode", EventType::InvalidOpcode},
        ClassifyCase{"wrf: page allocation failure: order:4, mode:0x4020",
                     EventType::PageAllocationFailure},
        ClassifyCase{"Out of memory: kill process 99 (vasp) score 987 or sacrifice child",
                     EventType::OomKill},
        ClassifyCase{"INFO: task blocked for more than 120 seconds: io",
                     EventType::HungTaskTimeout},
        ClassifyCase{"BUG: unable to handle kernel paging request at 00000000deadbeef",
                     EventType::KernelOops},
        ClassifyCase{" [<ffffffff81234567>] dvs_ipc_mesg+0x1a2/0x400", EventType::CallTrace},
        ClassifyCase{"DVS: file system request timed out", EventType::DvsError},
        ClassifyCase{"hsn: link error detected: lane 3", EventType::InterconnectError},
        ClassifyCase{"Shutdown: system going down: anomalous shutdown",
                     EventType::NodeShutdown},
        ClassifyCase{"System halted: node set to admindown", EventType::NodeHalt},
        ClassifyCase{"Booting Linux on physical CPU 0x0: rebooted", EventType::NodeBoot}));

TEST(ClassifierTest, IrrelevantChatterIsSkipped) {
  EXPECT_FALSE(classify_kernel_payload("systemd[1]: Started Session 1 of user root"));
  EXPECT_FALSE(classify_kernel_payload(""));
  EXPECT_FALSE(classify_kernel_payload("eth0: link up"));
}

TEST(ClassifierTest, CallTraceModuleExtraction) {
  EXPECT_EQ(call_trace_module(" [<ffffffff81234567>] mce_log+0x1a2/0x400"), "mce_log");
  EXPECT_FALSE(call_trace_module("no trace here").has_value());
  EXPECT_FALSE(call_trace_module(" [<ffffffff81234567>] +0x1/0x2").has_value());
}

TEST(ClassifierTest, NhcPayloads) {
  EXPECT_EQ(classify_nhc_payload("abnormal exit of application vasp jobid=1")->type,
            EventType::AppExitAbnormal);
  EXPECT_EQ(classify_nhc_payload("NHC: node placed in suspect mode")->type,
            EventType::NhcSuspectMode);
  EXPECT_EQ(classify_nhc_payload("NHC: application exit test failed")->type,
            EventType::NhcTestFail);
  EXPECT_FALSE(classify_nhc_payload("ordinary message").has_value());
}

TEST(ClassifierTest, ControllerPayloads) {
  EXPECT_EQ(classify_controller_payload("ec_sedc_warning: CPU_TEMP reading 71.2 outside")
                ->type,
            EventType::SedcTemperatureWarning);
  EXPECT_EQ(classify_controller_payload("ec_sedc_warning: VDD reading 11.1 below minimum")
                ->type,
            EventType::SedcVoltageWarning);
  EXPECT_EQ(classify_controller_payload("cabinet sensor check failed")->type,
            EventType::CabinetSensorCheck);
  EXPECT_EQ(classify_controller_payload("get sensor reading failed")->type,
            EventType::GetSensorReadingFailed);
  EXPECT_EQ(classify_controller_payload("L0_sysd_mce: memory error")->type,
            EventType::L0SysdMce);
  EXPECT_FALSE(classify_controller_payload("hello world").has_value());
}

TEST(ClassifierTest, ErdEventNames) {
  EXPECT_EQ(erd_event_type("ec_node_failed"), EventType::NodeHeartbeatFault);
  EXPECT_EQ(erd_event_type("ec_hw_error"), EventType::EcHwError);
  EXPECT_EQ(erd_event_type("ec_link_error"), EventType::LinkError);
  EXPECT_FALSE(erd_event_type("ec_unknown_event").has_value());
}

// --------------------------------------------------------- line parsers ----

TEST(ConsoleParserTest, ParsesFullLine) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_console_line(
      "2015-03-02T14:05:01.123456 nid00042 c0-0c0s10n2 kernel: "
      "Kernel panic - not syncing: Fatal exception jobid=100007",
      ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, EventType::KernelPanic);
  EXPECT_EQ(r->node.value, 42u);
  EXPECT_EQ(r->job_id, 100007);
  EXPECT_EQ(r->blade.value, topo.blade_of(platform::NodeId{42}).value);
  EXPECT_EQ(symbols.view(r->detail), "Fatal exception");
}

TEST(ConsoleParserTest, ConsumerDaemonMapsToConsumerSource) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_console_line(
      "2015-03-02T14:05:01.000000 nid00001 c0-0c0s0n1 hwerrd: EDAC MC0: x", ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->source, logmodel::LogSource::Consumer);
}

TEST(ConsoleParserTest, RejectsMalformed) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  EXPECT_FALSE(parse_console_line("", ctx).has_value());
  EXPECT_FALSE(parse_console_line("not a line at all", ctx).has_value());
  EXPECT_FALSE(
      parse_console_line("2015-03-02T14:05:01.0 nid99999 c0-0c0s0n0 kernel: EDAC MC0: x", ctx)
          .has_value());
  EXPECT_FALSE(
      parse_console_line("2015-03-02T14:05:01.0 nid00001 c0-0c0s0n1 cron: EDAC MC0: x", ctx)
          .has_value());
}

TEST(MessagesParserTest, SyslogTimestampAndJob) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_messages_line(
      "Mar  2 14:05:01 nid00042 nhc[2114]: NHC: memory test failed jobid=55", ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, EventType::NhcTestFail);
  EXPECT_EQ(r->job_id, 55);
  EXPECT_EQ(util::civil_time(r->time).year, 2015);
}

TEST(MessagesParserTest, YearRolloverAcrossNewYear) {
  // A corpus window starting in December: syslog lines carry no year, so
  // January lines must be dated into base_year + 1, not 11 months back.
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2014, 12};
  const auto dec = parse_messages_line(
      "Dec 31 23:59:58 nid00042 nhc[2114]: NHC: memory test failed jobid=55", ctx);
  const auto jan = parse_messages_line(
      "Jan  1 00:00:07 nid00042 nhc[2114]: NHC: memory test failed jobid=55", ctx);
  ASSERT_TRUE(dec.has_value());
  ASSERT_TRUE(jan.has_value());
  EXPECT_EQ(util::civil_time(dec->time).year, 2014);
  EXPECT_EQ(util::civil_time(jan->time).year, 2015);
  EXPECT_LT(dec->time, jan->time);
}

TEST(ControllerParserTest, BladeScopedWarningWithValue) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_controller_line(
      "2015-03-02T00:10:00.000000 c0-0c1s3 cc: ec_sedc_warning: AIR_VEL reading 1.532 below "
      "minimum",
      ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, EventType::SedcAirVelocityWarning);
  EXPECT_FALSE(r->has_node());
  ASSERT_TRUE(r->has_blade());
  EXPECT_NEAR(r->value, 1.532, 1e-9);
  EXPECT_TRUE(r->has_cabinet());
}

TEST(ControllerParserTest, SedcReadingNodeScoped) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_controller_line(
      "2015-03-02T00:10:00.000000 c0-0c0s0n2 cc: sedc: CpuTemperature value=40.125", ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, EventType::SedcReading);
  EXPECT_EQ(r->node.value, 2u);
  EXPECT_NEAR(r->value, 40.125, 1e-9);
  EXPECT_EQ(symbols.view(r->detail), "CpuTemperature");
}

TEST(ErdParserTest, NodeEvent) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_erd_line(
      "2015-03-02T01:02:03.000000 erd ev=ec_node_voltage_fault src=c0-0c0s10n2 "
      "node=nid00042 node voltage fault: VDD out of range",
      ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, EventType::NodeVoltageFault);
  EXPECT_EQ(r->node.value, 42u);
  EXPECT_NE(symbols.view(r->detail).find("VDD"), std::string_view::npos);
}

TEST(ErdParserTest, BladeScopedEvent) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  const auto r = parse_erd_line(
      "2015-03-02T01:02:03.000000 erd ev=ec_hw_error src=c0-0c1s7 corrected error", ctx);
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->type, EventType::EcHwError);
  EXPECT_FALSE(r->has_node());
  EXPECT_TRUE(r->has_blade());
}

TEST(SchedulerParserTest, BuildsJobTable) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  jobs::JobTable table;
  SchedulerLogParser parser(ctx, table);

  const auto start = parser.parse_line(
      "2015-03-02T08:00:00.000000 slurmctld: sched: Allocate JobId=100001 Apid=1000017 "
      "User=alice App=vasp NodeList=nid[00000-00003] NodeCnt=4 MemPerNode=28.0G");
  ASSERT_TRUE(start.has_value());
  EXPECT_EQ(start->type, EventType::JobStart);

  const auto overalloc = parser.parse_line(
      "2015-03-02T08:00:30.000000 slurmctld: error: JobId=100001 OverallocCnt=2 allocated "
      "memory exceeds node capacity");
  ASSERT_TRUE(overalloc.has_value());
  EXPECT_EQ(overalloc->type, EventType::JobOverallocation);

  const auto end = parser.parse_line(
      "2015-03-02T09:00:00.000000 slurmctld: JobId=100001 Ended ExitCode=137:0 "
      "Reason=OomKilled");
  ASSERT_TRUE(end.has_value());
  EXPECT_EQ(end->type, EventType::JobEnd);
  EXPECT_EQ(static_cast<int>(end->value), 137);

  table.finalize();
  const auto* job = table.find(100001);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->user, "alice");
  EXPECT_EQ(job->app_name, "vasp");
  EXPECT_EQ(job->nodes.size(), 4u);
  EXPECT_EQ(job->apid, 1000017);
  EXPECT_NEAR(job->mem_per_node_gb, 28.0, 1e-9);
  EXPECT_TRUE(job->overallocated);
  EXPECT_EQ(job->overallocated_nodes, 2u);
  EXPECT_TRUE(job->ended);
  EXPECT_EQ(job->exit_code, 137);
}

TEST(SchedulerParserTest, TorqueDialectFullLifecycle) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  jobs::JobTable table;
  SchedulerLogParser parser(ctx, table);

  const auto run = parser.parse_line(
      "03/02/2015 08:00:00;0008;PBS_Server;Job;200001.sdb;Job Run Apid=2000017 User=bob "
      "App=wrf NodeList=nid[00004-00007] NodeCnt=4 MemPerNode=24.0G");
  ASSERT_TRUE(run.has_value());
  EXPECT_EQ(run->type, EventType::JobStart);
  EXPECT_EQ(run->job_id, 200001);

  const auto overalloc = parser.parse_line(
      "03/02/2015 08:00:30;0008;PBS_Server;Job;200001.sdb;OverallocCnt=3 allocated memory "
      "exceeds node capacity");
  ASSERT_TRUE(overalloc.has_value());
  EXPECT_EQ(overalloc->type, EventType::JobOverallocation);

  const auto exit = parser.parse_line(
      "03/02/2015 09:30:00;0008;PBS_Server;Job;200001.sdb;Exit_status=137 Reason=OomKilled");
  ASSERT_TRUE(exit.has_value());
  EXPECT_EQ(exit->type, EventType::JobEnd);
  EXPECT_EQ(static_cast<int>(exit->value), 137);

  const auto epilogue = parser.parse_line(
      "03/02/2015 09:30:05;0008;PBS_Server;Job;200001.sdb;Epilogue complete");
  ASSERT_TRUE(epilogue.has_value());
  EXPECT_EQ(epilogue->type, EventType::EpilogueRun);

  table.finalize();
  const auto* job = table.find(200001);
  ASSERT_NE(job, nullptr);
  EXPECT_EQ(job->user, "bob");
  EXPECT_EQ(job->nodes.size(), 4u);
  EXPECT_TRUE(job->overallocated);
  EXPECT_EQ(job->overallocated_nodes, 3u);
  EXPECT_EQ(job->exit_code, 137);
  EXPECT_EQ(job->end.usec, util::make_time(2015, 3, 2, 9, 30).usec);
}

TEST(SchedulerParserTest, TorqueMalformedRejected) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  jobs::JobTable table;
  SchedulerLogParser parser(ctx, table);
  EXPECT_FALSE(parser.parse_line("03/02/2015 08:00:00;0008;PBS_Server").has_value());
  EXPECT_FALSE(parser.parse_line("13/40/2015 08:00:00;0008;PBS_Server;Job;1.sdb;x")
                   .has_value());
  EXPECT_FALSE(
      parser.parse_line("03/02/2015 08:00:00;0008;NotPBS;Job;1.sdb;Epilogue complete")
          .has_value());
  EXPECT_FALSE(
      parser.parse_line("03/02/2015 08:00:00;0008;PBS_Server;Job;abc.sdb;Epilogue complete")
          .has_value());
}

// -------------------------------------------------------------- totality ----

/// Property: mutated log lines never crash any parser (they may parse or
/// be rejected, but must not throw).
class ParserTotality : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ParserTotality, MutatedLinesNeverThrow) {
  const auto topo = s1_topology();
  logmodel::SymbolTable symbols;
  const ParseContext ctx{&topo, &symbols, 2015};
  jobs::JobTable table;
  SchedulerLogParser sched(ctx, table);
  util::Rng rng(GetParam());

  const std::string templates[] = {
      "2015-03-02T14:05:01.123456 nid00042 c0-0c0s10n2 kernel: Kernel panic - not syncing: "
      "x jobid=7",
      "Mar  2 14:05:01 nid00042 nhc[2114]: NHC: memory test failed",
      "2015-03-02T00:10:00.000000 c0-0c1s3 cc: ec_sedc_warning: VDD reading 1.5 below",
      "2015-03-02T01:02:03.000000 erd ev=ec_hw_error src=c0-0c1s7 node=nid00042 detail",
      "2015-03-02T08:00:00.000000 slurmctld: sched: Allocate JobId=1 Apid=17 User=u App=a "
      "NodeList=nid[00000-00003] NodeCnt=4 MemPerNode=28.0G",
  };
  for (int iter = 0; iter < 400; ++iter) {
    std::string line(templates[rng.uniform_int(0, 4)]);
    // Apply 1-8 random mutations: deletion, substitution, truncation.
    const auto mutations = rng.uniform_int(1, 8);
    for (std::int64_t m = 0; m < mutations && !line.empty(); ++m) {
      const auto pos =
          static_cast<std::size_t>(rng.uniform_int(0, static_cast<std::int64_t>(line.size()) - 1));
      switch (rng.uniform_int(0, 2)) {
        case 0: line.erase(pos, 1); break;
        case 1: line[pos] = static_cast<char>(rng.uniform_int(32, 126)); break;
        default: line.resize(pos); break;
      }
    }
    EXPECT_NO_THROW({
      (void)parse_console_line(line, ctx);
      (void)parse_messages_line(line, ctx);
      (void)parse_controller_line(line, ctx);
      (void)parse_erd_line(line, ctx);
      (void)sched.parse_line(line);
    }) << line;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserTotality, ::testing::Values(11u, 22u, 33u, 44u));

// ------------------------------------------------ corpus-level parsing ----

TEST(CorpusParseTest, NewYearStraddlingWindowDatesRecordsInWindow) {
  // Dec 29 2014 + 5 days: most of the window is past New Year.  Syslog
  // lines carry no year, so before the rollover fix every post-Jan-1
  // messages record landed in January 2014 — eleven months early.
  auto config = faultsim::scenario_preset(platform::SystemName::S2, 5, 1231);
  config.begin = util::make_time(2014, 12, 29);
  const auto sim = faultsim::Simulator(config).run();
  const auto parsed = parse_corpus(loggen::build_corpus(sim));
  ASSERT_GT(parsed.parsed_records, 0u);

  const auto begin = config.begin;
  // Job-end and recovery records may trail the nominal window; anything
  // mis-dated by the rollover bug would be ~11 months out, far beyond this.
  const auto end = config.end() + util::Duration::days(2);
  for (const auto& r : parsed.store.records()) {
    ASSERT_GE(r.time, begin) << util::format_iso(r.time);
    ASSERT_LT(r.time, end) << util::format_iso(r.time);
  }

  // The syslog-stamped source must actually contribute post-rollover
  // records, or the loop above proved nothing.
  const auto newyear = util::make_time(2015, 1, 1);
  bool messages_after_newyear = false;
  for (const auto& r : parsed.store.records()) {
    if (r.source == logmodel::LogSource::Messages && r.time >= newyear) {
      messages_after_newyear = true;
      break;
    }
  }
  EXPECT_TRUE(messages_after_newyear);
}

TEST(CorpusParseTest, CrlfCorpusParsesIdentically) {
  // Corpora that passed through Windows tooling arrive CRLF-terminated;
  // the parse must be byte-identical to the LF original.
  const auto sim =
      faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S2, 1, 77)).run();
  const auto corpus = loggen::build_corpus(sim);
  loggen::Corpus crlf = corpus;
  for (auto& text : crlf.text) {
    std::string converted;
    converted.reserve(text.size() + text.size() / 40);
    for (const char c : text) {
      if (c == '\n') converted += '\r';
      converted += c;
    }
    text = std::move(converted);
  }

  const auto want = parse_corpus(corpus);
  const auto got = parse_corpus(crlf);
  EXPECT_EQ(want.total_lines, got.total_lines);
  EXPECT_EQ(want.parsed_records, got.parsed_records);
  EXPECT_EQ(want.skipped_lines, got.skipped_lines);
  ASSERT_EQ(want.store.size(), got.store.size());
  for (std::size_t i = 0; i < want.store.size(); ++i) {
    ASSERT_EQ(want.store[i].time, got.store[i].time) << i;
    ASSERT_EQ(want.store[i].type, got.store[i].type) << i;
    ASSERT_EQ(want.store.detail(i), got.store.detail(i)) << i;
  }
  EXPECT_EQ(want.jobs.size(), got.jobs.size());
}

}  // namespace
}  // namespace hpcfail::parsers
