// Fig 3: cumulative node failures over inter-node failure times, S1, 7
// weeks.  Paper: 92.3% (W1) and 76.2% (W7) of failures happen within 1-16
// minutes of each other; MTBFs of 1.5 (+/-0.56) and 12.1 (+/-4.2) minutes;
// adjacent failures range from seconds to >2 hours; far shorter than the
// >6h SWO spacing on Blue Waters or 12-13h server MTBF at Google.
#include <algorithm>

#include "bench_common.hpp"
#include "core/temporal.hpp"
#include "stats/bootstrap.hpp"
#include "stats/fit.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 3: inter-node failure times (S1, 7 weeks)");

  const auto p = bench::run_system(platform::SystemName::S1, 49, 303);
  const core::TemporalAnalyzer temporal(p.failures);
  const auto weeks = temporal.weekly_stats(p.sim.config.begin, 7);

  util::TextTable table({"Week", "Failures", "<=2 min", "<=16 min", "<=2 h",
                         "burst MTBF (min)", "bootstrap 95% CI"});
  double best_within16 = 0.0;
  double worst_within16 = 1.0;
  std::vector<double> burst_mtbfs;
  for (std::size_t w = 0; w < weeks.size(); ++w) {
    const auto& wk = weeks[w];
    // "Burst MTBF": mean gap restricted to gaps <= 2 h — the failures the
    // paper describes as minutes apart (days without failures excluded).
    std::vector<double> burst_gaps;
    for (const double g : wk.gap_ecdf.sorted_sample()) {
      if (g <= 120.0) burst_gaps.push_back(g);
    }
    const auto ci = stats::bootstrap_mean_ci(burst_gaps, 400);
    if (!burst_gaps.empty()) burst_mtbfs.push_back(ci.point);
    table.row()
        .cell("W" + std::to_string(w + 1))
        .cell(static_cast<std::int64_t>(wk.failures))
        .pct(wk.fraction_within(2.0))
        .pct(wk.fraction_within(16.0))
        .pct(wk.fraction_within(120.0))
        .cell(ci.point, 2)
        .cell("[" + util::fmt_double(ci.lo, 2) + ", " + util::fmt_double(ci.hi, 2) + "]");
    best_within16 = std::max(best_within16, wk.fraction_within(16.0));
    worst_within16 = std::min(worst_within16, wk.fraction_within(16.0));
  }
  std::cout << table.render() << '\n';

  // Weibull shape < 1 confirms the bursty (clustered) failure process.
  const auto all_gaps =
      temporal.inter_failure_minutes(p.sim.config.begin, p.sim.config.end());
  if (const auto weibull = stats::fit_weibull(all_gaps)) {
    std::cout << "Weibull fit over all gaps: shape=" << util::fmt_double(weibull->shape, 3)
              << " scale=" << util::fmt_double(weibull->scale, 1) << " min (shape<1 => bursty)\n\n";
    check.in_range("Weibull shape (bursty, <1)", weibull->shape, 0.05, 1.0);
  }

  check.in_range("best week: fraction within 16 min (paper 92.3%)", best_within16, 0.70,
                 1.0);
  check.in_range("worst week: fraction within 16 min (paper 76.2%)", worst_within16, 0.30,
                 1.0);
  if (!burst_mtbfs.empty()) {
    const auto [lo, hi] = std::minmax_element(burst_mtbfs.begin(), burst_mtbfs.end());
    check.in_range("burst MTBF min across weeks (paper 1.5 min)", *lo, 0.5, 16.0);
    check.in_range("burst MTBF max across weeks (paper 12.1 min)", *hi, 1.0, 40.0);
  }
  return check.exit_code();
}
