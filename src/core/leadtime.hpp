// Lead-time analysis (Section III-D, Figs 13-14, Observation 5).
//
// For every failure the internal lead time is (failure - first indicative
// internal record).  When correlated external indicators exist earlier, the
// enhanced lead time is (failure - earliest correlated external record).
// The analyzer also evaluates a simple online predictor with and without
// the external-correlation requirement to measure the false-positive-rate
// reduction of Fig 14.
#pragma once

#include <optional>
#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/log_store.hpp"
#include "stats/summary.hpp"

namespace hpcfail::util {
class ThreadPool;
}  // namespace hpcfail::util

namespace hpcfail::core {

struct LeadTimeConfig {
  /// How far before the failure external indicators are searched.
  util::Duration external_lookback = util::Duration::hours(2);
  /// The external indicator must precede the first internal indicator by at
  /// least this much to count as an enhancement.
  util::Duration min_gain = util::Duration::seconds(30);
  /// Paper: "the early indicators were absent during normal operation".
  /// An indicator only counts when its type was quiet on the blade over
  /// the reference window preceding the search window; this rejects the
  /// ambient warning storms of deviant blades.
  bool require_quiet_baseline = true;
  util::Duration quiet_window = util::Duration::hours(6);
};

struct FailureLeadTime {
  std::size_t failure_index = 0;       ///< into the analyzed-failure list
  util::Duration internal_lead{};      ///< >= 0
  std::optional<util::Duration> external_lead;  ///< set when enhanceable
  [[nodiscard]] bool enhanceable() const noexcept { return external_lead.has_value(); }
};

struct LeadTimeSummary {
  std::size_t failures = 0;
  std::size_t enhanceable = 0;
  stats::StreamingStats internal_minutes;       ///< over all failures
  stats::StreamingStats internal_minutes_enh;   ///< over enhanceable failures
  stats::StreamingStats external_minutes;       ///< over enhanceable failures
  [[nodiscard]] double enhanceable_fraction() const noexcept {
    return failures ? static_cast<double>(enhanceable) / static_cast<double>(failures) : 0.0;
  }
  /// Mean enhancement factor over the enhanceable population.
  [[nodiscard]] double enhancement_factor() const noexcept {
    const double internal = internal_minutes_enh.mean();
    return internal > 0.0 ? external_minutes.mean() / internal : 0.0;
  }
};

struct PredictorEvaluation {
  std::size_t flagged = 0;         ///< node-windows the predictor flagged
  std::size_t true_positive = 0;   ///< ... followed by a failure
  std::size_t false_positive = 0;
  [[nodiscard]] double fp_rate() const noexcept {
    return flagged ? static_cast<double>(false_positive) / static_cast<double>(flagged)
                   : 0.0;
  }
};

class LeadTimeAnalyzer {
 public:
  /// Keeps a reference to `store`, which must be finalized (throws
  /// std::logic_error otherwise — fail loud at construction, not on the
  /// first query against stale indexes).
  LeadTimeAnalyzer(const logmodel::LogStore& store, LeadTimeConfig config = {});

  /// Per-failure lead times; indexes parallel `failures`.  When `pool` is
  /// non-null the per-failure attributions (independent reads of the
  /// immutable store) shard over it into disjoint slots; the result is
  /// identical to the serial path.
  [[nodiscard]] std::vector<FailureLeadTime> lead_times(
      const std::vector<AnalyzedFailure>& failures,
      util::ThreadPool* pool = nullptr) const;

  [[nodiscard]] LeadTimeSummary summarize(
      const std::vector<AnalyzedFailure>& failures) const;

  /// Aggregates already-computed per-failure lead times;
  /// `summarize(failures)` == `summarize_lead_times(lead_times(failures))`.
  [[nodiscard]] static LeadTimeSummary summarize_lead_times(
      const std::vector<FailureLeadTime>& lead_times);

  /// Fig 14: evaluates the internal-pattern predictor. When
  /// `require_external` is set a node is only flagged when a correlated
  /// external indicator accompanies the internal pattern.
  ///
  /// Predictor: a node is flagged when two fault-indicative internal
  /// records of DIFFERENT types land within `pattern_window` — the
  /// sequence-of-fault-indicative-messages pattern of Section III-D.
  /// A flag is a true positive iff the node fails within `horizon`;
  /// flags on one node are deduplicated per horizon.
  [[nodiscard]] PredictorEvaluation evaluate_predictor(
      const std::vector<AnalyzedFailure>& failures, bool require_external,
      util::Duration horizon = util::Duration::hours(1),
      util::Duration pattern_window = util::Duration::minutes(10)) const;

 private:
  /// Earliest correlated external indicator before the failure, if any.
  [[nodiscard]] std::optional<util::TimePoint> earliest_external(
      const FailureEvent& event) const;
  [[nodiscard]] bool external_indicator_near(platform::NodeId node,
                                             platform::BladeId blade, util::TimePoint t,
                                             util::Duration lookback) const;
  /// True when `type` did not occur on the blade during the quiet window
  /// preceding `window_start`.
  [[nodiscard]] bool quiet_before(platform::BladeId blade, platform::NodeId node,
                                  logmodel::EventType type,
                                  util::TimePoint window_start) const;

  const logmodel::LogStore& store_;
  LeadTimeConfig config_;
};

}  // namespace hpcfail::core
