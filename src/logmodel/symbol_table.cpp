#include "logmodel/symbol_table.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "util/fault.hpp"

namespace hpcfail::logmodel {

SymbolTable::SymbolTable() { intern({}); }

SymbolTable::SymbolTable(const SymbolTable& other) : SymbolTable() {
  for (std::size_t i = 1; i < other.views_.size(); ++i) intern(other.views_[i]);
}

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this != &other) {
    SymbolTable copy(other);
    *this = std::move(copy);
  }
  return *this;
}

const char* SymbolTable::arena_store(std::string_view text) {
  if (blocks_.empty() || block_used_ + text.size() > kBlockBytes) {
    blocks_.push_back(std::make_unique<char[]>(std::max(text.size(), kBlockBytes)));
    block_used_ = 0;
  }
  char* dst = blocks_.back().get() + block_used_;
  std::memcpy(dst, text.data(), text.size());
  block_used_ += text.size();
  return dst;
}

Symbol SymbolTable::intern(std::string_view text) {
  if (const auto it = ids_.find(text); it != ids_.end()) return Symbol{it->second};
  std::string_view stable = text.empty()
                                ? std::string_view{}
                                : std::string_view(arena_store(text), text.size());
  const auto id = static_cast<std::uint32_t>(views_.size());
  views_.push_back(stable);
  ids_.emplace(stable, id);
  payload_bytes_ += text.size();
  return Symbol{id};
}

std::vector<Symbol> SymbolTable::absorb(const SymbolTable& src) {
  if (HPCFAIL_FAULT_SITE("store.symbol_absorb.bad_alloc")) throw std::bad_alloc{};
  std::vector<Symbol> remap(src.views_.size());
  for (std::size_t i = 0; i < src.views_.size(); ++i) remap[i] = intern(src.views_[i]);
  return remap;
}

}  // namespace hpcfail::logmodel
