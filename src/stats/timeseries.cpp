#include "stats/timeseries.hpp"

#include <algorithm>
#include <cmath>

namespace hpcfail::stats {

std::vector<double> windowed_counts(std::span<const double> event_times, double begin,
                                    double end, double window) {
  std::vector<double> counts;
  if (!(window > 0.0) || !(end > begin)) return counts;
  const auto bins = static_cast<std::size_t>(std::ceil((end - begin) / window));
  counts.assign(bins, 0.0);
  for (const double t : event_times) {
    if (t < begin || t >= end) continue;
    const auto bin = static_cast<std::size_t>((t - begin) / window);
    if (bin < bins) counts[bin] += 1.0;
  }
  return counts;
}

double index_of_dispersion(std::span<const double> counts) {
  if (counts.empty()) return 0.0;
  double mean = 0.0;
  for (const double c : counts) mean += c;
  mean /= static_cast<double>(counts.size());
  if (mean <= 0.0) return 0.0;
  double var = 0.0;
  for (const double c : counts) var += (c - mean) * (c - mean);
  var /= static_cast<double>(counts.size());
  return var / mean;
}

double autocorrelation(std::span<const double> series, std::size_t lag) {
  if (series.size() <= lag + 1) return 0.0;
  double mean = 0.0;
  for (const double x : series) mean += x;
  mean /= static_cast<double>(series.size());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < series.size(); ++i) {
    den += (series[i] - mean) * (series[i] - mean);
  }
  if (den <= 0.0) return 0.0;
  for (std::size_t i = 0; i + lag < series.size(); ++i) {
    num += (series[i] - mean) * (series[i + lag] - mean);
  }
  return num / den;
}

}  // namespace hpcfail::stats
