# Empty dependencies file for tab03_fault_breakdown.
# This may be replaced when dependencies are built.
