# Empty dependencies file for fig17_overallocation.
# This may be replaced when dependencies are built.
