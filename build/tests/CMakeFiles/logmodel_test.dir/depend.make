# Empty dependencies file for logmodel_test.
# This may be replaced when dependencies are built.
