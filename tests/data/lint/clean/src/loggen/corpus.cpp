// Minimal consistent corpus file-name table for the clean fixture tree.
namespace hpcfail::loggen {
namespace {
constexpr std::array<std::string_view, 3> kFileNames = {
    "p0-console.log", "controller.log", "scheduler.log"};
}  // namespace
}  // namespace hpcfail::loggen
