// Seed-robustness of the scenario calibration: the paper-band properties
// the benches claim must hold across seeds, not just at the benches' fixed
// seeds.  Also covers the newest substrate pieces end-to-end: interconnect
// events, routine chatter, and the timeseries burstiness stats.
#include <gtest/gtest.h>

#include "core/analysis_context.hpp"
#include "core/benign_faults.hpp"
#include "core/external_correlator.hpp"
#include "core/leadtime.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "sensors/sensor_model.hpp"
#include "stats/timeseries.hpp"

namespace hpcfail {
namespace {

struct CorpusRun {
  faultsim::SimulationResult sim;
  loggen::Corpus corpus;
  parsers::ParsedCorpus parsed;
  std::vector<core::AnalyzedFailure> failures;
};

CorpusRun run_s1(std::uint64_t seed) {
  CorpusRun r{faultsim::Simulator(faultsim::scenario_preset(platform::SystemName::S1, 21, seed))
            .run(),
        {}, {}, {}};
  r.corpus = loggen::build_corpus(r.sim);
  r.parsed = parsers::parse_corpus(r.corpus);
  const core::AnalysisContext ctx(
      r.parsed.store, &r.parsed.jobs, r.parsed.store.first_time(),
      r.parsed.store.last_time() + util::Duration::microseconds(1));
  r.failures = ctx.failures();
  return r;
}

class CalibrationAcrossSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CalibrationAcrossSeeds, PaperBandsHold) {
  const CorpusRun r = run_s1(GetParam());
  ASSERT_GT(r.failures.size(), 30u);

  // NVF -> failure correspondence stays high (Fig 5 band, widened).
  const core::ExternalCorrelator correlator(r.parsed.store, r.failures);
  const auto nvf = correlator.correspondence(logmodel::EventType::NodeVoltageFault,
                                             r.sim.config.begin, r.sim.config.end());
  if (nvf.faults >= 5) {
    EXPECT_GE(nvf.fraction(), 0.5) << "seed " << GetParam();
  }
  // NHF -> failure correspondence stays in the weak-correlation band.
  const auto nhf = correlator.correspondence(logmodel::EventType::NodeHeartbeatFault,
                                             r.sim.config.begin, r.sim.config.end());
  EXPECT_GE(nhf.fraction(), 0.15) << "seed " << GetParam();
  EXPECT_LE(nhf.fraction(), 0.80) << "seed " << GetParam();

  // Lead-time enhanceable fraction stays in the Fig 13 band (widened).
  const core::LeadTimeAnalyzer leadtime(r.parsed.store);
  const auto lt = leadtime.summarize(r.failures);
  EXPECT_GE(lt.enhanceable_fraction(), 0.05) << "seed " << GetParam();
  EXPECT_LE(lt.enhanceable_fraction(), 0.40) << "seed " << GetParam();

  // Parse fidelity: exactly the chatter is skipped.
  EXPECT_EQ(r.parsed.skipped_lines, r.corpus.chatter_lines);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CalibrationAcrossSeeds,
                         ::testing::Values(101u, 202u, 303u));

TEST(InterconnectTest, FailoverChainRoundTrips) {
  const CorpusRun r = run_s1(404);
  const auto& store = r.parsed.store;
  // Lane degrades exist and each failed failover left its marker.
  const auto degrades = store.count_of_type(logmodel::EventType::LaneDegrade);
  const auto ok = store.count_of_type(logmodel::EventType::LinkFailover);
  const auto failed = store.count_of_type(logmodel::EventType::LinkFailoverFailed);
  EXPECT_GT(degrades, 20u);
  EXPECT_EQ(degrades, ok + failed);
  EXPECT_GT(ok, failed);  // adaptive routing mostly works
  // Failed failovers surface interconnect errors on nodes.
  if (failed > 0) {
    EXPECT_GT(store.count_of_type(logmodel::EventType::InterconnectError), 0u);
  }
  const core::BenignFaultAnalyzer benign(store);
  const auto summary = benign.interconnect_summary(r.sim.config.begin, r.sim.config.end(),
                                                   r.failures);
  EXPECT_EQ(summary.lane_degrades, degrades);
}

TEST(SensorWarningTest, DeviantWarningsCarryOutOfBandReadings) {
  const CorpusRun r = run_s1(606);
  const auto& store = r.parsed.store;
  std::size_t checked = 0;
  for (const std::uint32_t idx :
       store.type_index(logmodel::EventType::SedcAirVelocityWarning)) {
    const auto& rec = store[idx];
    if (rec.value == 0.0) continue;  // transient warnings carry synthetic values too
    // Deviant-blade warnings carry the actual sampled reading, which must
    // sit outside the allowed band.
    const auto spec = sensors::default_spec(sensors::SensorKind::AirVelocity);
    EXPECT_TRUE(rec.value < spec.warn_low || rec.value > spec.warn_high) << rec.value;
    ++checked;
    if (checked > 200) break;
  }
  EXPECT_GT(checked, 50u);
}

TEST(ChatterTest, ChatterPresentAndSkippedOnly) {
  const CorpusRun r = run_s1(505);
  EXPECT_GT(r.corpus.chatter_lines, 1000u);
  // Chatter never becomes records: no record detail matches a chatter
  // payload signature.
  for (const auto& rec : r.parsed.store.records()) {
    const std::string_view detail = r.parsed.store.detail(rec);
    EXPECT_EQ(detail.find("crng init done"), std::string_view::npos);
    EXPECT_EQ(detail.find("Started Session"), std::string_view::npos);
  }
}

TEST(TimeseriesTest, WindowedCountsAndDispersion) {
  const std::vector<double> events = {0.5, 0.6, 0.7, 5.5, 5.6, 12.0};
  const auto counts = stats::windowed_counts(events, 0.0, 15.0, 1.0);
  ASSERT_EQ(counts.size(), 15u);
  EXPECT_EQ(counts[0], 3.0);
  EXPECT_EQ(counts[5], 2.0);
  EXPECT_EQ(counts[12], 1.0);
  EXPECT_GT(stats::index_of_dispersion(counts), 1.0);  // clustered
  // A constant series is under-dispersed.
  const std::vector<double> constant(20, 4.0);
  EXPECT_DOUBLE_EQ(stats::index_of_dispersion(constant), 0.0);
  // Degenerate inputs.
  EXPECT_EQ(stats::index_of_dispersion({}), 0.0);
  EXPECT_TRUE(stats::windowed_counts(events, 0.0, 0.0, 1.0).empty());
}

TEST(TimeseriesTest, Autocorrelation) {
  // Perfectly periodic series: strong positive correlation at the period.
  std::vector<double> series;
  for (int i = 0; i < 100; ++i) series.push_back(i % 2 == 0 ? 1.0 : -1.0);
  EXPECT_GT(stats::autocorrelation(series, 2), 0.9);
  EXPECT_LT(stats::autocorrelation(series, 1), -0.9);
  EXPECT_EQ(stats::autocorrelation(series, 200), 0.0);  // lag too large
  const std::vector<double> constant(10, 3.0);
  EXPECT_EQ(stats::autocorrelation(constant, 1), 0.0);
}

}  // namespace
}  // namespace hpcfail
