// Report-equivalence suite for the interned/columnar LogStore refactor:
// the full pipeline (simulate -> render -> parse -> analyze -> report) must
// produce byte-identical markdown to the goldens captured from the
// pre-refactor pipeline (testdata/report_golden/S*.md, corpus_tool with
// days=3 seed=4200), and the pooled parse path must match the serial one
// byte for byte.
//
// To regenerate after an intentional behavior change:
//   HPCFAIL_UPDATE_GOLDENS=1 ./tests/report_golden_test
// then review the diff like any golden update.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "core/markdown_report.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail {
namespace {

std::string golden_dir() {
  // Tests run from the build tree; the fixture lives in the source tree.
  for (const char* candidate :
       {"../testdata/report_golden", "../../testdata/report_golden",
        "testdata/report_golden", "/root/repo/testdata/report_golden"}) {
    if (std::filesystem::is_directory(candidate)) return candidate;
  }
  return {};
}

/// The exact flow of `corpus_tool generate` + `corpus_tool report` that
/// captured the goldens, minus the disk round trip (pinned elsewhere by
/// loggen's WriteReadDirectoryRoundTrip and the ingest equivalence suite).
std::string generate_report(platform::SystemName system, util::ThreadPool* pool) {
  const auto sim = faultsim::Simulator(faultsim::scenario_preset(system, 3, 4200)).run();
  const auto corpus = loggen::build_corpus(sim);
  const auto parsed = parsers::parse_corpus(corpus, pool);
  core::ReportInputs inputs;
  inputs.store = &parsed.store;
  inputs.jobs = &parsed.jobs;
  inputs.topology = &parsed.topology;
  inputs.system_label = corpus.system.label;
  inputs.begin = corpus.begin;
  inputs.end = corpus.begin + util::Duration::days(corpus.days);
  return core::markdown_report(inputs);
}

class ReportGolden : public ::testing::TestWithParam<platform::SystemName> {};

TEST_P(ReportGolden, MatchesPreChangeGoldenAndThreadCount) {
  const std::string dir = golden_dir();
  if (dir.empty()) GTEST_SKIP() << "testdata/report_golden not found";
  const std::string label =
      platform::system_preset(GetParam()).label;
  const std::filesystem::path path = std::filesystem::path(dir) / (label + ".md");

  util::ThreadPool serial(1);
  const std::string report = generate_report(GetParam(), &serial);

  if (std::getenv("HPCFAIL_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << report;
    GTEST_SKIP() << "golden updated: " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing golden " << path
                  << " (run with HPCFAIL_UPDATE_GOLDENS=1 to create)";
  std::ostringstream want;
  want << in.rdbuf();
  EXPECT_EQ(report, want.str()) << label << " report drifted from the golden";

  // Thread-count independence: the pooled parse must yield the same bytes.
  util::ThreadPool pooled(4);
  EXPECT_EQ(generate_report(GetParam(), &pooled), report)
      << label << " report differs between 1 and 4 parse threads";
}

INSTANTIATE_TEST_SUITE_P(
    AllSystems, ReportGolden,
    ::testing::Values(platform::SystemName::S1, platform::SystemName::S2,
                      platform::SystemName::S3, platform::SystemName::S4,
                      platform::SystemName::S5),
    [](const auto& info) {
      return platform::system_preset(info.param).label;
    });

}  // namespace
}  // namespace hpcfail
