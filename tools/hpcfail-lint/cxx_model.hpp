// Shared C++ source model for hpcfail-lint.
//
// The doc-consistency checks of PR 1 worked line-by-line with regexes; the
// semantic checks added since (capture-lifetime, dangling-view,
// finalize-protocol, raw-sync) need to know what regexes cannot: whether a
// `&` sits inside a lambda capture list or an `if`, whether `new` appears in
// code or in a comment quoting dmesg, where a class body begins and ends.
// This header provides the shared substrate:
//
//   - Lexer: a tolerant C++ tokenizer (line comments, block comments,
//     ordinary/raw string literals, char literals, numbers with digit
//     separators, preprocessor directives with continuations) producing a
//     token stream with 1-based line numbers and brace-nesting depth.
//   - SourceFile: one loaded file — raw text, split lines (for the legacy
//     regex checks), tokens, and parsed inline suppressions.
//   - SourceTree: the per-run cache.  Every check (legacy and token-level)
//     loads files through it, so each file is read and lexed at most once
//     per lint run no matter how many checks look at it.
//   - Suppressions: `// hpcfail-lint: allow(<check>) -- <reason>` parsed
//     from comments.  Token-level checks emit through emit(), which honors
//     a reasoned allow on the diagnostic's line (or the line above) and
//     rejects a reasonless one: the finding stands and an extra
//     missing-reason diagnostic is added, so suppressions are auditable.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "lint.hpp"

namespace hpcfail::lint {

struct Token {
  enum class Kind {
    Identifier,    ///< identifiers and keywords (the lexer does not distinguish)
    Number,        ///< numeric literal, digit separators included
    String,        ///< ordinary string literal, quotes included
    RawString,     ///< raw string literal, full R"delim(...)delim" lexeme
    CharLit,       ///< character literal
    Punct,         ///< punctuation; "::", "->", "&&", "||" fuse to one token
    Preprocessor,  ///< a whole directive line (continuations folded in)
  };

  Kind kind = Kind::Punct;
  std::string_view text;  ///< view into SourceFile::content
  std::size_t line = 0;   ///< 1-based line of the token's first character
  int depth = 0;          ///< brace-nesting depth before this token
};

/// One `hpcfail-lint: allow(<check>)` comment.  `reason` is what follows
/// `--`, trimmed; empty means the suppression is incomplete.
struct Suppression {
  std::size_t line = 0;
  std::string check;
  std::string reason;
};

/// A loaded source file.  `lines[n-1]` is line n; token text views into
/// `content`, so a SourceFile must not be moved while tokens are in use
/// (SourceTree hands out stable pointers).
struct SourceFile {
  std::string rel_path;
  std::string content;
  std::vector<std::string> lines;
  std::vector<Token> tokens;
  std::vector<Suppression> suppressions;
};

/// Tokenizes `content` into `tokens` and harvests suppressions from the
/// comments.  Tolerant by construction: malformed input (unterminated
/// strings, stray bytes, non-C++ files like FORMATS.md) always terminates
/// with a best-effort stream, never throws.
void lex(SourceFile& file);

/// Per-run cache of loaded files and directory listings.  All checks go
/// through one SourceTree so the repo is read once per lint invocation;
/// pointers returned by source() stay valid for the tree's lifetime.
class SourceTree {
 public:
  explicit SourceTree(std::filesystem::path root) : root_(std::move(root)) {}

  SourceTree(const SourceTree&) = delete;
  SourceTree& operator=(const SourceTree&) = delete;

  [[nodiscard]] const std::filesystem::path& root() const noexcept { return root_; }

  /// Loads (once) and returns the file at `rel_path`, or nullptr when it
  /// cannot be read; the failure is cached too, so each missing file costs
  /// one stat per run.
  const SourceFile* source(const std::string& rel_path);

  /// Sorted repo-relative paths of every .cpp/.hpp under `top_dir`
  /// (recursive), cached per directory.  Empty when the directory does not
  /// exist — pair with exists() for a "layout drifted" diagnostic.
  const std::vector<std::string>& files_under(const std::string& top_dir);

  [[nodiscard]] bool exists(const std::string& rel_path) const;

  /// Cache-efficiency counters for the CLI's --stats line.
  [[nodiscard]] std::size_t files_loaded() const noexcept { return files_loaded_; }
  [[nodiscard]] std::size_t bytes_loaded() const noexcept { return bytes_loaded_; }

 private:
  std::filesystem::path root_;
  std::map<std::string, std::optional<SourceFile>> files_;
  std::map<std::string, std::vector<std::string>> listings_;
  std::size_t files_loaded_ = 0;
  std::size_t bytes_loaded_ = 0;
};

/// Emits a diagnostic for a token-level check, honoring inline suppressions.
/// An `allow(<check>)` with a reason on `line` or the line directly above
/// suppresses the finding.  An allow without a reason does NOT suppress: the
/// finding is emitted and a second diagnostic marks the incomplete allow, so
/// `-- <reason>` stays mandatory.
void emit(const SourceFile& file, std::size_t line, const std::string& check,
          const std::string& message, Report& report,
          Severity severity = Severity::Error);

/// Index of the matching closer for tokens[open] (one of ( [ {), or
/// tokens.size() when unbalanced.  Counts all three bracket kinds so nested
/// lambdas/initializers inside argument lists are skipped correctly.
[[nodiscard]] std::size_t matching_close(const std::vector<Token>& tokens,
                                         std::size_t open);

}  // namespace hpcfail::lint
