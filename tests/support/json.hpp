// Minimal recursive-descent JSON parser shared by the test suites
// (metrics_test.cpp pins the metrics/trace export schemas with it;
// lint_test.cpp pins the SARIF 2.1.0 shape).  Objects keep key order so
// tests can assert sorting.  Header-only, test-support only: production
// code must not include this.
#pragma once

#include <cctype>
#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace hpcfail::test {

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object };
  Kind kind = Kind::Null;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> array;
  std::vector<std::pair<std::string, JsonValue>> object;

  [[nodiscard]] static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = Kind::Bool;
    v.boolean = b;
    return v;
  }

  [[nodiscard]] const JsonValue* find(const std::string& key) const {
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (i_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("JSON error at offset " + std::to_string(i_) + ": " + why);
  }
  void skip_ws() {
    while (i_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[i_]))) ++i_;
  }
  char peek() {
    skip_ws();
    if (i_ >= s_.size()) fail("unexpected end");
    return s_[i_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++i_;
  }

  JsonValue value() {
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return string_value();
      case 't': return literal("true", JsonValue::make_bool(true));
      case 'f': return literal("false", JsonValue::make_bool(false));
      case 'n': return literal("null", JsonValue{});
      default: return number();
    }
  }

  JsonValue literal(std::string_view word, JsonValue v) {
    skip_ws();
    if (s_.compare(i_, word.size(), word) != 0) fail("bad literal");
    i_ += word.size();
    return v;
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::Object;
    if (peek() == '}') {
      ++i_;
      return v;
    }
    while (true) {
      JsonValue key = string_value();
      expect(':');
      v.object.emplace_back(std::move(key.text), value());
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::Array;
    if (peek() == ']') {
      ++i_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      if (peek() == ',') {
        ++i_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  JsonValue string_value() {
    expect('"');
    JsonValue v;
    v.kind = JsonValue::Kind::String;
    while (true) {
      if (i_ >= s_.size()) fail("unterminated string");
      const char c = s_[i_++];
      if (c == '"') return v;
      if (c == '\\') {
        if (i_ >= s_.size()) fail("dangling escape");
        const char e = s_[i_++];
        switch (e) {
          case '"': v.text += '"'; break;
          case '\\': v.text += '\\'; break;
          case '/': v.text += '/'; break;
          case 'n': v.text += '\n'; break;
          case 't': v.text += '\t'; break;
          default: fail("unsupported escape");
        }
      } else {
        v.text += c;
      }
    }
  }

  JsonValue number() {
    skip_ws();
    const std::size_t start = i_;
    if (i_ < s_.size() && (s_[i_] == '-' || s_[i_] == '+')) ++i_;
    while (i_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[i_])) || s_[i_] == '.' ||
            s_[i_] == 'e' || s_[i_] == 'E' || s_[i_] == '-' || s_[i_] == '+')) {
      ++i_;
    }
    if (i_ == start) fail("expected a number");
    JsonValue v;
    v.kind = JsonValue::Kind::Number;
    v.number = std::stod(s_.substr(start, i_ - start));
    return v;
  }

  const std::string& s_;
  std::size_t i_ = 0;
};

inline JsonValue parse_json(const std::string& text) { return JsonParser(text).parse(); }

}  // namespace hpcfail::test
