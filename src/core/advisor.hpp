// Mitigation advisor: turns a diagnosed failure into the recommended
// operator action, following the paper's Table VI findings/recommendations
// and the Discussion section.  The central lesson is that the right action
// depends on the root cause — quarantining a node whose "fault" was the
// application wastes capacity, while rebooting fail-slow hardware without
// flagging it guarantees recurrence.
#pragma once

#include <string>
#include <vector>

#include "core/job_analysis.hpp"
#include "core/leadtime.hpp"
#include "core/root_cause.hpp"

namespace hpcfail::core {

enum class Action : std::uint8_t {
  QuarantineNode,      ///< keep the node out of the pool pending hardware service
  ScheduleHwService,   ///< fail-slow: plan replacement before the hard failure
  RebootOnly,          ///< transient; return to service after reboot
  NotifyUser,          ///< application-caused: inform the job's owner
  BlockApplication,    ///< repeat-offender APID: block/hold the application
  CapJobMemory,        ///< over-allocation: fix the request/scheduler limits
  EscalateVendor,      ///< undiagnosable pattern: needs vendor/operator input
  TuneHealthChecker,   ///< NHC should add a test for this signature
};

[[nodiscard]] std::string_view to_string(Action a) noexcept;

struct Recommendation {
  std::size_t failure_index = 0;  ///< into the analyzed-failure list
  Action primary = Action::RebootOnly;
  std::vector<Action> secondary;
  bool checkpoint_restart_useful = true;  ///< C/R helps unless the app is at fault
  std::string explanation;
};

struct AdvisorConfig {
  /// A job id with at least this many failures is a repeat offender.
  std::size_t repeat_offender_failures = 4;
};

class MitigationAdvisor {
 public:
  explicit MitigationAdvisor(AdvisorConfig config = {}) : config_(config) {}

  /// Recommendations for every failure; indexes parallel `failures`.
  /// `jobs` may be null (no over-allocation / repeat-offender context).
  [[nodiscard]] std::vector<Recommendation> advise(
      const std::vector<AnalyzedFailure>& failures, const jobs::JobTable* jobs) const;

  /// One failure in isolation (no cross-failure repeat-offender logic).
  [[nodiscard]] Recommendation advise_one(const AnalyzedFailure& failure,
                                          const jobs::JobInfo* job) const;

 private:
  AdvisorConfig config_;
};

/// Fleet-level summary: how many failures fall under each action.
struct ActionSummary {
  std::array<std::size_t, 8> counts{};
  std::size_t total = 0;
  /// Fraction of failures where quarantining would have been the WRONG
  /// call (application-triggered; the paper's headline recommendation).
  double quarantine_waste_fraction = 0.0;
};

[[nodiscard]] ActionSummary summarize_actions(const std::vector<Recommendation>& recs,
                                              const std::vector<AnalyzedFailure>& failures);

}  // namespace hpcfail::core
