// Scenario (de)serialization: every calibration knob of ScenarioConfig as
// "section.key = value" text, so downstream users can version their
// scenario definitions and sweep parameters without recompiling
// (corpus_tool --config).  One key registry drives both directions, so the
// dump/parse pair round-trips by construction.
#pragma once

#include <string>

#include "faultsim/scenario.hpp"

namespace hpcfail::faultsim {

/// Dumps every knob, one "key = value" per line, grouped by section.
[[nodiscard]] std::string scenario_to_string(const ScenarioConfig& config);

/// Applies "key = value" lines on top of `config`.  Unknown keys, malformed
/// lines or bad values throw std::runtime_error with the offending line.
/// Blank lines and lines starting with '#' are ignored.
void apply_scenario_overrides(ScenarioConfig& config, const std::string& text);

/// Builds a scenario from scratch: the text must set `system` (S1..S5);
/// `days` and `seed` default to 7 and 42.  Preset values for the chosen
/// system are applied first, then the overrides.
[[nodiscard]] ScenarioConfig scenario_from_string(const std::string& text);

}  // namespace hpcfail::faultsim
