// Empirical CDF over a sample, used by the inter-failure-time figures
// (Fig 3, Fig 19) and the lead-time analysis.
#pragma once

#include <span>
#include <vector>

namespace hpcfail::stats {

class Ecdf {
 public:
  Ecdf() = default;
  /// Copies and sorts the sample.
  explicit Ecdf(std::span<const double> sample);

  [[nodiscard]] bool empty() const noexcept { return sorted_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return sorted_.size(); }

  /// P(X <= x); 0 for an empty sample.
  [[nodiscard]] double fraction_at_or_below(double x) const noexcept;

  /// q-quantile for q in [0, 1] via linear interpolation between order
  /// statistics (type-7, the numpy default). Requires a non-empty sample.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double min() const noexcept { return sorted_.front(); }
  [[nodiscard]] double max() const noexcept { return sorted_.back(); }

  /// Evaluation points (the sorted sample) for plotting.
  [[nodiscard]] const std::vector<double>& sorted_sample() const noexcept { return sorted_; }

  /// Kolmogorov-Smirnov distance to another ECDF (sup over both samples).
  [[nodiscard]] double ks_distance(const Ecdf& other) const noexcept;

 private:
  std::vector<double> sorted_;
};

}  // namespace hpcfail::stats
