// Corpus degradation: models the logging discrepancies the paper names as
// its first challenge — "production logs occasionally contain missing
// (specific time duration) or partial information (absence of certain
// environmental logs)".  Degradation operates on raw text, so robustness is
// measured on exactly the input a real deployment would face.
#pragma once

#include <array>
#include <optional>

#include "loggen/corpus.hpp"
#include "util/rng.hpp"

namespace hpcfail::loggen {

struct DegradeConfig {
  /// Fraction of lines dropped uniformly at random (per source).
  double drop_line_fraction = 0.0;
  /// Fraction of lines with random byte corruption applied.
  double corrupt_line_fraction = 0.0;
  /// When set, all lines with ISO timestamps inside [gap_begin, gap_end)
  /// are removed — a missing time duration.  Syslog-stamped sources are
  /// matched by parsing their stamps with the corpus base year.
  std::optional<util::TimePoint> gap_begin;
  std::optional<util::TimePoint> gap_end;
  /// Sources removed entirely (e.g. no environmental logs, as for S5).
  std::array<bool, logmodel::kLogSourceCount> drop_source{};
  std::uint64_t seed = 99;
};

/// Returns a degraded copy; the manifest is untouched.
[[nodiscard]] Corpus degrade_corpus(const Corpus& corpus, const DegradeConfig& config);

}  // namespace hpcfail::loggen
