#include "util/strings.hpp"

#include <charconv>

#include "util/scan.hpp"

namespace hpcfail::util {

namespace {
inline bool is_ws(char c) noexcept { return scan::is_ws(c); }
}  // namespace

std::string_view trim(std::string_view s) noexcept {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::vector<std::string_view> split(std::string_view s, char sep) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string_view> split_lines(std::string_view text) {
  // Sizing the vector up front from a vectorized newline count keeps the
  // loop free of reallocation; scan::LineCursor preserves the historical
  // semantics (CRLF stripped, empty lines dropped, unterminated tail kept).
  std::vector<std::string_view> lines;
  lines.reserve(scan::count_byte(text, '\n') + 1);
  scan::LineCursor cursor(text);
  std::string_view line;
  while (cursor.next(line)) lines.push_back(line);
  return lines;
}

std::vector<std::string_view> split_ws(std::string_view s) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && is_ws(s[i])) ++i;
    const std::size_t start = i;
    while (i < s.size() && !is_ws(s[i])) ++i;
    if (i > start) out.push_back(s.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split_n(std::string_view s, char sep, std::size_t max_fields) {
  std::vector<std::string_view> out;
  if (max_fields == 0) return out;
  std::size_t start = 0;
  while (out.size() + 1 < max_fields) {
    const std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.push_back(s.substr(start));
  return out;
}

std::string to_lower(std::string_view s) {
  // Branchless ASCII transform: locale-independent by construction, so a
  // host with e.g. a Turkish locale can't change how classifiers compare.
  std::string out(s);
  for (char& c : out) c = scan::to_lower_ascii(c);
  return out;
}

std::optional<std::int64_t> parse_i64(std::string_view s) noexcept {
  // Fast path: a bare run of <= 18 digits cannot overflow int64 and needs
  // no trim (digits are not whitespace); everything else — signs, spaces,
  // 19+ digits — takes the from_chars path that defines the semantics.
  if (std::uint64_t fast = 0; s.size() <= 18 && scan::parse_u64_digits(s, fast)) {
    return static_cast<std::int64_t>(fast);
  }
  s = trim(s);
  std::int64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<std::uint64_t> parse_u64(std::string_view s) noexcept {
  if (std::uint64_t fast = 0; scan::parse_u64_digits(s, fast)) return fast;
  s = trim(s);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::optional<double> parse_double(std::string_view s) noexcept {
  s = trim(s);
  double value = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), value);
  if (ec != std::errc{} || ptr != s.data() + s.size()) return std::nullopt;
  return value;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::optional<std::string_view> strip_prefix(std::string_view s,
                                             std::string_view prefix) noexcept {
  if (!starts_with(s, prefix)) return std::nullopt;
  return s.substr(prefix.size());
}

std::optional<std::string_view> extract_between(std::string_view s, std::string_view open,
                                                std::string_view close) noexcept {
  const std::size_t b = s.find(open);
  if (b == std::string_view::npos) return std::nullopt;
  const std::size_t start = b + open.size();
  const std::size_t e = s.find(close, start);
  if (e == std::string_view::npos) return std::nullopt;
  return s.substr(start, e - start);
}

std::optional<std::string_view> find_kv(std::string_view line, std::string_view key) noexcept {
  std::size_t pos = 0;
  while (pos < line.size()) {
    const std::size_t hit = line.find(key, pos);
    if (hit == std::string_view::npos) return std::nullopt;
    const std::size_t eq = hit + key.size();
    const bool boundary_ok = hit == 0 || is_ws(line[hit - 1]) || line[hit - 1] == ',';
    if (boundary_ok && eq < line.size() && line[eq] == '=') {
      // Values run to the next whitespace; commas stay inside (node lists).
      std::size_t end = eq + 1;
      while (end < line.size() && !is_ws(line[end])) ++end;
      return line.substr(eq + 1, end - eq - 1);
    }
    pos = hit + 1;
  }
  return std::nullopt;
}

}  // namespace hpcfail::util
