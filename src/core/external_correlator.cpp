#include "core/external_correlator.hpp"

#include <stdexcept>

#include "util/strings.hpp"

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;

ExternalCorrelator::ExternalCorrelator(const logmodel::LogStore& store,
                                       const std::vector<AnalyzedFailure>& failures,
                                       CorrelatorConfig config)
    : store_(store), failures_(failures), config_(config) {
  if (!store.finalized()) {
    throw std::logic_error(
        "ExternalCorrelator: store must be finalized before analysis (call "
        "LogStore::finalize() after the last add())");
  }
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    const auto& f = failures_[i];
    if (f.event.node.valid()) failures_by_node_[f.event.node.value].push_back(i);
  }
}

const AnalyzedFailure* ExternalCorrelator::match_failure(platform::NodeId node,
                                                         util::TimePoint t) const {
  const auto it = failures_by_node_.find(node.value);
  if (it == failures_by_node_.end()) return nullptr;
  for (const std::size_t i : it->second) {
    const auto& f = failures_[i];
    const util::Duration gap{std::abs((f.event.time - t).usec)};
    if (gap <= config_.match_window) return &f;
  }
  return nullptr;
}

FaultCorrespondence ExternalCorrelator::correspondence(EventType fault_type,
                                                       util::TimePoint begin,
                                                       util::TimePoint end) const {
  FaultCorrespondence out;
  for (const std::uint32_t idx : store_.type_range(fault_type, begin, end)) {
    const LogRecord& r = store_[idx];
    if (!r.has_node()) continue;
    ++out.faults;
    if (match_failure(r.node, r.time) != nullptr) ++out.matched;
  }
  return out;
}

NhfBreakdown ExternalCorrelator::nhf_breakdown(util::TimePoint begin,
                                               util::TimePoint end) const {
  NhfBreakdown out;
  for (const std::uint32_t idx :
       store_.type_range(EventType::NodeHeartbeatFault, begin, end)) {
    const LogRecord& r = store_[idx];
    if (!r.has_node()) continue;
    ++out.total;
    if (const auto* failure = match_failure(r.node, r.time)) {
      ++out.failed;
      if (failure->inference.cause == logmodel::RootCause::HardwareMce ||
          failure->inference.cause == logmodel::RootCause::FailSlowHardware) {
        ++out.failed_mce;
      }
    } else if (util::contains(store_.detail(r), "powered off")) {
      ++out.power_off;
    } else if (util::contains(store_.detail(r), "skipped")) {
      ++out.skipped_heartbeat;
    } else {
      ++out.other_benign;
    }
  }
  return out;
}

}  // namespace hpcfail::core
