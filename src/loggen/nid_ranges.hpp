// Compressed node-list notation as used by Slurm:
//   nid[00012-00015,00040,00100-00103]  or  node[0001-0004,0012]
// A single node renders without brackets (nid00042).  Scheduler log lines
// carry job allocations in this form; the parser expands them back.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "platform/ids.hpp"
#include "platform/topology.hpp"

namespace hpcfail::loggen {

/// Compresses a node list (need not be sorted; duplicates are dropped).
/// `naming` selects the nid/node prefix and digit width.
[[nodiscard]] std::string compress_node_list(std::vector<platform::NodeId> nodes,
                                             platform::NamingScheme naming);

/// Expands the compressed form. Returns nullopt on malformed input.
/// Validation against a topology (bounds) is the caller's business.
[[nodiscard]] std::optional<std::vector<platform::NodeId>> expand_node_list(
    std::string_view text) noexcept;

}  // namespace hpcfail::loggen
