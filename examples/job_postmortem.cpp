// Job postmortem: investigate the memory over-allocation day of Fig 17 the
// way an operator would — start from the dying jobs, walk each job's
// records across all log universes, and print the per-job verdict.
//
//   ./examples/job_postmortem [seed]
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/job_analysis.hpp"
#include "faultsim/special_scenarios.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 99;

  const auto sim = faultsim::overallocation_day(seed);
  const auto corpus = loggen::build_corpus(sim);
  const auto parsed = parsers::parse_corpus(corpus);
  const auto analysis = core::AnalysisEngine().analyze(parsed);
  const auto& failures = analysis.failures;

  const core::JobAnalyzer analyzer(parsed.jobs, failures);
  const auto report = analyzer.overallocation_report();

  std::cout << "over-allocation day: " << parsed.jobs.size() << " jobs, " << failures.size()
            << " node failures\n\n";
  util::TextTable table({"job", "app", "nodes", "overallocated", "failed", "verdict"});
  for (const auto& row : report) {
    const auto* job = parsed.jobs.find(row.job_id);
    std::string verdict = "healthy";
    if (row.failed > 0 && row.failed == row.overallocated) {
      verdict = "all overallocated nodes died";
    } else if (row.failed > 0) {
      verdict = "partial OOM losses; job killed, re-allocation needed";
    } else if (row.overallocated > 0) {
      verdict = "overallocated but survived";
    }
    table.row()
        .cell("J" + std::to_string(row.job_id % 100))
        .cell(job != nullptr ? job->app_name : "?")
        .cell(static_cast<std::int64_t>(row.allocated))
        .cell(static_cast<std::int64_t>(row.overallocated))
        .cell(static_cast<std::int64_t>(row.failed))
        .cell(verdict);
  }
  std::cout << table.render() << '\n';

  // Deep-dive into the first fully-dying job: show its failure chains.
  for (const auto& row : report) {
    if (row.failed == 0 || row.failed != row.overallocated) continue;
    std::cout << "deep dive: job " << row.job_id << "\n";
    for (const auto& f : failures) {
      if (f.event.job_id != row.job_id) continue;
      std::cout << "  " << util::format_iso(f.event.time) << "  "
                << parsed.topology.node_name(f.event.node) << "  "
                << to_string(f.inference.cause) << " (" << f.inference.rationale << ")\n";
      for (const std::uint32_t idx : f.event.chain) {
        const auto& r = parsed.store[idx];
        std::cout << "      " << util::format_iso(r.time) << "  " << to_string(r.type)
                  << "  " << parsed.store.detail(r) << '\n';
      }
    }
    break;
  }

  std::cout << "\nrecommendation (paper Observation 6): these nodes need no quarantine —\n"
               "the fault is the job's memory request; cap it or inform the user.\n";
  return 0;
}
