file(REMOVE_RECURSE
  "CMakeFiles/fig05_nvf_nhf.dir/fig05_nvf_nhf.cpp.o"
  "CMakeFiles/fig05_nvf_nhf.dir/fig05_nvf_nhf.cpp.o.d"
  "fig05_nvf_nhf"
  "fig05_nvf_nhf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_nvf_nhf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
