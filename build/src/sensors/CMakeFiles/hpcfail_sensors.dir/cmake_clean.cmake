file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_sensors.dir/sensor_model.cpp.o"
  "CMakeFiles/hpcfail_sensors.dir/sensor_model.cpp.o.d"
  "libhpcfail_sensors.a"
  "libhpcfail_sensors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_sensors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
