// Unit and property tests for src/logmodel: taxonomy consistency, LogStore.
#include <gtest/gtest.h>

#include "logmodel/cause.hpp"
#include "logmodel/event_type.hpp"
#include "logmodel/log_store.hpp"
#include <stdexcept>

#include "logmodel/store_builder.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace hpcfail::logmodel {
namespace {

// ------------------------------------------------------------ taxonomy ----

TEST(TaxonomyTest, EveryTypeHasUniqueName) {
  std::set<std::string_view> names;
  for (std::size_t i = 0; i < kEventTypeCount; ++i) {
    const auto type = static_cast<EventType>(i);
    const auto name = to_string(type);
    EXPECT_NE(name, "?");
    EXPECT_TRUE(names.insert(name).second) << name;
    EXPECT_EQ(event_type_from_string(name), type);
  }
  EXPECT_FALSE(event_type_from_string("NoSuchEvent").has_value());
}

class TaxonomyClassification : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TaxonomyClassification, ClassesAreConsistent) {
  const auto type = static_cast<EventType>(GetParam());
  const EventClass cls = event_class(type);
  // Health faults and SEDC warnings are external; they never overlap.
  if (is_health_fault(type) || is_sedc_warning(type)) {
    EXPECT_EQ(cls, EventClass::External) << to_string(type);
    EXPECT_FALSE(is_health_fault(type) && is_sedc_warning(type)) << to_string(type);
  }
  // Failure markers and internal indicators are internal and disjoint.
  if (is_failure_marker(type) || is_internal_indicator(type)) {
    EXPECT_EQ(cls, EventClass::Internal) << to_string(type);
    EXPECT_FALSE(is_failure_marker(type) && is_internal_indicator(type)) << to_string(type);
  }
  // External lead-time indicators are external events.
  if (is_external_indicator(type)) {
    EXPECT_EQ(cls, EventClass::External) << to_string(type);
  }
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TaxonomyClassification,
                         ::testing::Range<std::size_t>(0, kEventTypeCount));

TEST(CauseTest, LayersAndStrings) {
  EXPECT_EQ(layer_of(RootCause::HardwareMce), CauseLayer::Hardware);
  EXPECT_EQ(layer_of(RootCause::FailSlowHardware), CauseLayer::Hardware);
  EXPECT_EQ(layer_of(RootCause::KernelBug), CauseLayer::Software);
  EXPECT_EQ(layer_of(RootCause::LustreBug), CauseLayer::Software);
  EXPECT_EQ(layer_of(RootCause::MemoryExhaustion), CauseLayer::Application);
  EXPECT_EQ(layer_of(RootCause::BiosUnknown), CauseLayer::Unknown);
  EXPECT_TRUE(is_application_triggered(RootCause::MemoryExhaustion));
  EXPECT_FALSE(is_application_triggered(RootCause::HardwareMce));
  for (std::size_t i = 0; i < kRootCauseCount; ++i) {
    EXPECT_NE(to_string(static_cast<RootCause>(i)), "?");
  }
}

// ------------------------------------------------------------ LogStore ----

LogRecord make_record(std::int64_t sec, EventType type, std::uint32_t node,
                      std::uint32_t blade = 0, std::uint32_t cabinet = 0) {
  LogRecord r;
  r.time = util::TimePoint::from_unix_seconds(sec);
  r.type = type;
  r.node = platform::NodeId{node};
  r.blade = platform::BladeId{blade};
  r.cabinet = platform::CabinetId{cabinet};
  return r;
}

TEST(LogStoreTest, SortsByTime) {
  std::vector<LogRecord> records;
  records.push_back(make_record(30, EventType::KernelPanic, 1));
  records.push_back(make_record(10, EventType::HardwareError, 1));
  records.push_back(make_record(20, EventType::MachineCheckException, 1));
  const LogStore store{std::move(records)};
  ASSERT_EQ(store.size(), 3u);
  EXPECT_EQ(store[0].type, EventType::HardwareError);
  EXPECT_EQ(store[2].type, EventType::KernelPanic);
  EXPECT_EQ(store.first_time().unix_seconds(), 10);
  EXPECT_EQ(store.last_time().unix_seconds(), 30);
}

TEST(LogStoreTest, FromSortedRejectsNonMonotonicTimes) {
  std::vector<LogRecord> sorted;
  sorted.push_back(make_record(10, EventType::HardwareError, 1));
  sorted.push_back(make_record(20, EventType::KernelPanic, 1));
  EXPECT_EQ(LogStore::from_sorted(sorted, {}).size(), 2u);

  // A breach anywhere in the input must throw, not silently build a store
  // whose binary-searched range queries would return garbage.
  std::vector<LogRecord> breached;
  breached.push_back(make_record(10, EventType::HardwareError, 1));
  breached.push_back(make_record(30, EventType::KernelPanic, 1));
  breached.push_back(make_record(20, EventType::NodeBoot, 1));
  EXPECT_THROW((void)LogStore::from_sorted(std::move(breached), {}),
               std::logic_error);
}

TEST(LogStoreTest, RangeQueryHalfOpen) {
  std::vector<LogRecord> records;
  for (int s = 0; s < 10; ++s) {
    records.push_back(make_record(s, EventType::LustreError, 1));
  }
  const LogStore store{std::move(records)};
  const auto span = store.range(util::TimePoint::from_unix_seconds(2),
                                util::TimePoint::from_unix_seconds(5));
  EXPECT_EQ(span.size(), 3u);
  EXPECT_EQ(span.front().time.unix_seconds(), 2);
  EXPECT_EQ(span.back().time.unix_seconds(), 4);
}

TEST(LogStoreTest, NodeBladeCabinetIndexes) {
  std::vector<LogRecord> records;
  records.push_back(make_record(1, EventType::HardwareError, 1, 10, 100));
  records.push_back(make_record(2, EventType::HardwareError, 2, 10, 100));
  records.push_back(make_record(3, EventType::HardwareError, 3, 11, 101));
  // Blade-scoped record (no node).
  LogRecord blade_only;
  blade_only.time = util::TimePoint::from_unix_seconds(4);
  blade_only.type = EventType::EcHwError;
  blade_only.blade = platform::BladeId{10};
  blade_only.cabinet = platform::CabinetId{100};
  records.push_back(blade_only);
  const LogStore store{std::move(records)};

  const auto t0 = util::TimePoint::from_unix_seconds(0);
  const auto t9 = util::TimePoint::from_unix_seconds(9);
  EXPECT_EQ(store.node_range(platform::NodeId{1}, t0, t9).size(), 1u);
  EXPECT_EQ(store.blade_range(platform::BladeId{10}, t0, t9).size(), 3u);
  EXPECT_EQ(store.cabinet_range(platform::CabinetId{100}, t0, t9).size(), 3u);
  EXPECT_EQ(store.cabinet_range(platform::CabinetId{101}, t0, t9).size(), 1u);
  EXPECT_EQ(store.node_range(platform::NodeId{99}, t0, t9).size(), 0u);
  // Window narrowing.
  EXPECT_EQ(store.blade_range(platform::BladeId{10}, util::TimePoint::from_unix_seconds(2),
                              util::TimePoint::from_unix_seconds(4))
                .size(),
            1u);
}

TEST(LogStoreTest, TypeIndexAndCounts) {
  std::vector<LogRecord> records;
  records.push_back(make_record(1, EventType::KernelPanic, 1));
  records.push_back(make_record(2, EventType::KernelPanic, 2));
  records.push_back(make_record(3, EventType::NodeBoot, 2));
  const LogStore store{std::move(records)};
  EXPECT_EQ(store.count_of_type(EventType::KernelPanic), 2u);
  EXPECT_EQ(store.count_of_type(EventType::OomKill), 0u);
  EXPECT_EQ(store.type_index(EventType::NodeBoot).size(), 1u);
  const auto in_window = store.type_range(EventType::KernelPanic,
                                          util::TimePoint::from_unix_seconds(2),
                                          util::TimePoint::from_unix_seconds(9));
  EXPECT_EQ(in_window.size(), 1u);
}

TEST(LogStoreTest, IncrementalAddRequiresFinalize) {
  LogStore store;
  store.add(make_record(5, EventType::NodeBoot, 1));
  store.add(make_record(1, EventType::KernelPanic, 1));
  EXPECT_FALSE(store.finalized());
  store.finalize();
  EXPECT_TRUE(store.finalized());
  EXPECT_EQ(store[0].type, EventType::KernelPanic);
  EXPECT_EQ(store.nodes().size(), 1u);
}

TEST(LogStoreTest, EmptyStore) {
  const LogStore store{std::vector<LogRecord>{}};
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.range(util::TimePoint{0}, util::TimePoint{100}).empty());
  EXPECT_TRUE(store.nodes().empty());
}

TEST(LogStoreTest, DefaultConstructedStoreAnswersEveryQueryEmpty) {
  // A default-constructed store is trivially finalized; every query must
  // return the empty answer instead of indexing unbuilt tables (the
  // type_range subscript used to be UB here).
  const LogStore store;
  const auto t0 = util::TimePoint{0};
  const auto t9 = util::TimePoint::from_unix_seconds(9);
  EXPECT_TRUE(store.finalized());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.type_range(EventType::KernelPanic, t0, t9).empty());
  EXPECT_TRUE(store.type_index(EventType::KernelPanic).empty());
  EXPECT_EQ(store.count_of_type(EventType::KernelPanic), 0u);
  EXPECT_TRUE(store.node_range(platform::NodeId{1}, t0, t9).empty());
  EXPECT_TRUE(store.node_index(platform::NodeId{1}).empty());
  EXPECT_TRUE(store.range(t0, t9).empty());
  EXPECT_EQ(store.first_time(), util::TimePoint{});
  EXPECT_EQ(store.last_time(), util::TimePoint{});
}

TEST(LogStoreTest, QueriesOnNonFinalizedStoreThrow) {
  LogStore store;
  store.add(make_record(5, EventType::NodeBoot, 1));
  ASSERT_FALSE(store.finalized());
  const auto t0 = util::TimePoint{0};
  const auto t9 = util::TimePoint::from_unix_seconds(9);
  EXPECT_THROW((void)store.first_time(), std::logic_error);
  EXPECT_THROW((void)store.last_time(), std::logic_error);
  EXPECT_THROW((void)store.range(t0, t9), std::logic_error);
  EXPECT_THROW((void)store.node_range(platform::NodeId{1}, t0, t9), std::logic_error);
  EXPECT_THROW((void)store.blade_range(platform::BladeId{0}, t0, t9), std::logic_error);
  EXPECT_THROW((void)store.cabinet_range(platform::CabinetId{0}, t0, t9), std::logic_error);
  EXPECT_THROW((void)store.type_range(EventType::NodeBoot, t0, t9), std::logic_error);
  EXPECT_THROW((void)store.count_of_type(EventType::NodeBoot), std::logic_error);
  EXPECT_THROW((void)store.node_index(platform::NodeId{1}), std::logic_error);
  EXPECT_THROW((void)store.type_index(EventType::NodeBoot), std::logic_error);
  EXPECT_THROW((void)store.nodes(), std::logic_error);
  store.finalize();
  EXPECT_EQ(store.first_time().unix_seconds(), 5);
}

// ------------------------------------------------------- StoreBuilder ----

/// Time-tied records tagged with their append order in `detail` (interned
/// into `symbols`); the sharded build must reproduce the global
/// stable_sort order exactly.
std::vector<LogRecord> tied_sequence(std::size_t n, std::uint64_t seed,
                                     SymbolTable& symbols) {
  util::Rng rng(seed);
  std::vector<LogRecord> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    auto r = make_record(rng.uniform_int(0, 49), EventType::KernelPanic,
                         static_cast<std::uint32_t>(i % 7));
    r.detail = symbols.intern(std::to_string(i));
    out.push_back(r);
  }
  return out;
}

void expect_same_order(const LogStore& want, const LogStore& got) {
  ASSERT_EQ(want.size(), got.size());
  for (std::size_t i = 0; i < want.size(); ++i) {
    ASSERT_EQ(want[i].time, got[i].time) << i;
    ASSERT_EQ(want.detail(i), got.detail(i)) << i;
  }
}

TEST(StoreBuilderTest, MatchesGlobalStableSort) {
  SymbolTable symbols;
  const auto sequence = tied_sequence(1000, 31, symbols);
  const LogStore reference{std::vector<LogRecord>(sequence), symbols};

  StoreBuilder builder(64);  // ~16 shards
  builder.symbols() = symbols;  // sequence Symbols stay valid in the builder
  util::Rng rng(32);
  std::size_t i = 0;
  while (i < sequence.size()) {
    // Mixed single appends and batches of arbitrary size, like the
    // ingestion pipeline's chunk retirement produces.
    const auto batch = static_cast<std::size_t>(rng.uniform_int(1, 150));
    if (batch == 1) {
      builder.append(sequence[i++]);
    } else {
      const std::size_t hi = std::min(sequence.size(), i + batch);
      builder.append_batch({sequence.begin() + static_cast<std::ptrdiff_t>(i),
                            sequence.begin() + static_cast<std::ptrdiff_t>(hi)});
      i = hi;
    }
  }
  EXPECT_EQ(builder.record_count(), sequence.size());
  EXPECT_GT(builder.shard_count(), 1u);
  expect_same_order(reference, builder.build());
}

TEST(StoreBuilderTest, ParallelShardSortMatchesSerial) {
  SymbolTable symbols;
  const auto sequence = tied_sequence(500, 77, symbols);
  const LogStore reference{std::vector<LogRecord>(sequence), symbols};
  util::ThreadPool pool(4);
  StoreBuilder builder(32);
  // The two-arg overload remaps through absorb(); ids differ but the
  // resolved text must not.
  builder.append_batch(std::vector<LogRecord>(sequence), symbols);
  expect_same_order(reference, builder.build(&pool));
}

TEST(StoreBuilderTest, OversizedBatchKeepsContiguity) {
  // A batch larger than shard_records becomes its own shard; interleaving
  // with single appends must still reproduce the stable order.
  SymbolTable symbols;
  const auto sequence = tied_sequence(300, 5, symbols);
  const LogStore reference{std::vector<LogRecord>(sequence), symbols};
  StoreBuilder builder(16);
  builder.symbols() = symbols;
  builder.append(sequence[0]);
  builder.append_batch({sequence.begin() + 1, sequence.begin() + 200});
  for (std::size_t i = 200; i < sequence.size(); ++i) builder.append(sequence[i]);
  expect_same_order(reference, builder.build());
}

TEST(StoreBuilderTest, EmptyBuildYieldsUsableStore) {
  StoreBuilder builder;
  const LogStore store = builder.build();
  EXPECT_TRUE(store.finalized());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.count_of_type(EventType::KernelPanic), 0u);
}

}  // namespace
}  // namespace hpcfail::logmodel
