#include "faultsim/special_scenarios.hpp"

#include <algorithm>

namespace hpcfail::faultsim {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;
using logmodel::RootCause;
using logmodel::Severity;

std::vector<OverallocationJobPlan> fig17_job_plan() {
  // {nodes, overallocated, failures}; totals: 53 failures over 16 jobs.
  return {
      {650, 600, 1},  // J1
      {40, 12, 2},    // J2
      {80, 30, 3},    // J3
      {120, 60, 4},   // J4: few of many fail
      {8, 8, 8},      // J5: all overallocated nodes fail
      {30, 10, 2},    // J6
      {64, 20, 3},    // J7
      {6, 6, 6},      // J8: all overallocated nodes fail
      {48, 16, 2},    // J9
      {32, 8, 1},     // J10
      {100, 40, 4},   // J11
      {24, 6, 1},     // J12
      {72, 28, 3},    // J13
      {56, 18, 2},    // J14
      {200, 90, 5},   // J15: few of many fail
      {700, 683, 6},  // J16
  };
}

SimulationResult overallocation_day(std::uint64_t seed) {
  ScenarioConfig cfg = scenario_preset(platform::SystemName::S1, /*days=*/1, seed);
  cfg.enable_jobs = false;  // we hand-build the workload
  // Silence the stochastic failure process; only the over-allocation chains
  // should appear.
  cfg.failures.cause_weights = {};
  cfg.failures.failure_day_fraction = 0.0;
  cfg.failures.isolated_failures_per_day = 0.0;

  SimulationResult result{cfg, platform::Topology{cfg.system.topology}, {}, {}, {}, {}};
  util::Rng rng{seed ^ 0x5eedf00dULL};
  ChainEmitter emitter(result.topology, cfg.failures, result.records, result.symbols,
                       result.truth, rng);

  std::uint32_t next_node = 0;
  std::int64_t job_id = 600001;
  const auto plans = fig17_job_plan();
  util::TimePoint t = cfg.begin + util::Duration::hours(2);

  for (const auto& plan : plans) {
    jobs::Job job;
    job.job_id = job_id++;
    job.apid = job.job_id * 10 + 7;
    job.user = "mpiuser";
    job.app_name = "mpi_spectral";
    job.submit = t - util::Duration::minutes(20);
    job.start = t;
    job.end = t + util::Duration::hours(3);
    job.walltime_limit = util::Duration::hours(12);
    job.mem_per_node_gb = 96.0;  // more than any node has: the Slurm bug
    for (std::uint32_t i = 0; i < plan.nodes && next_node < result.topology.node_count();
         ++i) {
      job.nodes.push_back(platform::NodeId{next_node++});
    }

    // Over-allocation record for the job; the first `failures` of the
    // overallocated nodes die with OOM chains minutes into the run.
    job.outcome = jobs::JobOutcome::Overallocated;
    job.overallocated_nodes =
        std::min<std::uint32_t>(plan.overallocated, static_cast<std::uint32_t>(job.nodes.size()));
    util::TimePoint fail_t = t + util::Duration::minutes(12);
    std::uint32_t planted = 0;
    for (std::uint32_t i = 0; i < plan.overallocated && i < job.nodes.size(); ++i) {
      if (planted >= plan.failures) break;
      emitter.plant_failure(job.nodes[i], fail_t, RootCause::MemoryExhaustion, &job);
      fail_t = fail_t + util::Duration::seconds(rng.uniform_int(20, 180));
      ++planted;
    }
    job.end = fail_t + util::Duration::minutes(2);
    result.jobs.push_back(std::move(job));
    // Jobs start staggered through the morning.
    t = t + util::Duration::minutes(static_cast<std::int64_t>(rng.uniform_int(10, 40)));
  }

  for (const auto& job : result.jobs) emitter.emit_job_records(job);
  return result;
}

namespace {

/// Fresh empty result on a small Cray machine for a case study.
SimulationResult case_base(std::uint64_t seed, int days = 1) {
  ScenarioConfig cfg = scenario_preset(platform::SystemName::S4, days, seed);
  cfg.enable_jobs = false;
  cfg.failures.cause_weights = {};
  cfg.failures.failure_day_fraction = 0.0;
  cfg.failures.isolated_failures_per_day = 0.0;
  return SimulationResult{cfg, platform::Topology{cfg.system.topology}, {}, {}, {}, {}};
}

LogRecord node_rec(SimulationResult& sim, util::TimePoint t, LogSource src,
                   EventType type, Severity sev, platform::NodeId node,
                   std::string_view detail) {
  const platform::Topology& topo = sim.topology;
  LogRecord r;
  r.time = t;
  r.source = src;
  r.type = type;
  r.severity = sev;
  r.node = node;
  r.blade = topo.blade_of(node);
  r.cabinet = topo.cabinet_of(node);
  r.detail = sim.symbols.intern(detail);
  return r;
}

}  // namespace

std::vector<CaseStudy> build_case_studies(std::uint64_t seed) {
  std::vector<CaseStudy> cases;

  // Case 1: L0_sysd_MCE + NHC warnings; blade neighbours with correctable
  // hardware errors; no environmental or job indications. Undeducible.
  {
    CaseStudy cs;
    cs.title = "Case 1: L0_sysd_mce, blade neighbours erroring";
    cs.internal_indicators =
        "L0_sysd_MCE followed by NHC warnings; other nodes of the blade saw "
        "correctable H/W errors";
    cs.external_indicators = "none around the failure time";
    cs.expected = RootCause::L0SysdMceUnknown;
    cs.sim = case_base(seed + 1);
    util::Rng rng{seed + 1};
    ChainEmitter emitter(cs.sim.topology, cs.sim.config.failures, cs.sim.records,
                         cs.sim.symbols, cs.sim.truth, rng);
    const util::TimePoint t = cs.sim.config.begin + util::Duration::hours(9);
    const platform::NodeId victim{40};
    emitter.plant_failure(victim, t, RootCause::L0SysdMceUnknown, nullptr);
    // NHC warning shortly before, neighbours with benign correctable errors.
    cs.sim.records.push_back(node_rec(cs.sim, t - util::Duration::minutes(1),
                                      LogSource::Messages, EventType::NhcTestFail,
                                      Severity::Warning, victim, "NHC: warning"));
    for (const auto n : cs.sim.topology.nodes_on_blade(cs.sim.topology.blade_of(victim))) {
      if (n == victim) continue;
      cs.sim.records.push_back(node_rec(cs.sim, t - util::Duration::minutes(30),
                                        LogSource::Console, EventType::HardwareError,
                                        Severity::Warning, n, "correctable SSID error"));
    }
    cases.push_back(std::move(cs));
  }

  // Case 2: three temporally spread failures with the same
  // HW-error -> MCE -> oops pattern; link/temperature violations distant
  // from the failure time. CPU corruption / MCE root cause.
  {
    CaseStudy cs;
    cs.title = "Case 2: repeated HW error -> MCE -> kernel oops";
    cs.internal_indicators = "H/W error -> MCEs -> kernel oops on 3 distant nodes";
    cs.external_indicators = "link error & temperature violations distant from failures";
    cs.expected = RootCause::HardwareMce;
    cs.sim = case_base(seed + 2);
    util::Rng rng{seed + 2};
    ChainEmitter emitter(cs.sim.topology, cs.sim.config.failures, cs.sim.records,
                         cs.sim.symbols, cs.sim.truth, rng);
    const util::TimePoint base = cs.sim.config.begin;
    const platform::NodeId victims[] = {platform::NodeId{12}, platform::NodeId{300},
                                        platform::NodeId{902}};
    const util::Duration offsets[] = {util::Duration::hours(4),
                                      util::Duration::hours(12) + util::Duration::minutes(38),
                                      util::Duration::hours(15) + util::Duration::minutes(21)};
    for (int i = 0; i < 3; ++i) {
      emitter.plant_failure(victims[i], base + offsets[i], RootCause::HardwareMce, nullptr);
    }
    // Environmental noise hours away from any failure.
    emitter.emit_sedc_warning(cs.sim.topology.blade_of(victims[0]),
                              base + util::Duration::hours(20),
                              EventType::SedcTemperatureWarning, 71.0);
    cs.sim.records.push_back(node_rec(cs.sim, base + util::Duration::hours(21),
                                      LogSource::Erd, EventType::LinkError, Severity::Warning,
                                      victims[0], "Aries link error"));
    cases.push_back(std::move(cs));
  }

  // Case 3: six nodes, same job, user-killed -> oops with app-based call
  // trace; no external indications. Application memory exhaustion.
  {
    CaseStudy cs;
    cs.title = "Case 3: same job, user-killed, app call traces on 6 nodes";
    cs.internal_indicators = "user-killed -> kernel oops (app call trace), similar times";
    cs.external_indicators = "none; same application on all nodes";
    cs.expected = RootCause::MemoryExhaustion;
    cs.sim = case_base(seed + 3);
    util::Rng rng{seed + 3};
    ChainEmitter emitter(cs.sim.topology, cs.sim.config.failures, cs.sim.records,
                         cs.sim.symbols, cs.sim.truth, rng);
    jobs::Job job;
    job.job_id = 777001;
    job.apid = job.job_id * 10 + 7;
    job.user = "chen";
    job.app_name = "genomics_mem";
    job.start = cs.sim.config.begin + util::Duration::hours(10);
    job.end = job.start + util::Duration::hours(2);
    job.mem_per_node_gb = 60.0;
    // Six nodes on different blades (spatially distant).
    for (std::uint32_t i = 0; i < 6; ++i) {
      job.nodes.push_back(platform::NodeId{20 + i * 96});
    }
    util::TimePoint t = job.start + util::Duration::minutes(55);
    for (const auto n : job.nodes) {
      emitter.plant_failure(n, t, RootCause::MemoryExhaustion, &job);
      t = t + util::Duration::seconds(rng.uniform_int(15, 90));
    }
    job.outcome = jobs::JobOutcome::OomKilled;
    job.end = t + util::Duration::minutes(1);
    cs.sim.jobs.push_back(job);
    emitter.emit_job_records(cs.sim.jobs.back());
    cases.push_back(std::move(cs));
  }

  // Case 4: single failure, LustreErrors -> paging-request oops; external
  // link errors distant in time; scheduled job aborted. App-triggered FS bug.
  {
    CaseStudy cs;
    cs.title = "Case 4: Lustre errors -> paging request failure";
    cs.internal_indicators = "LustreErrors -> unable to handle kernel paging request";
    cs.external_indicators = "link errors & temp violations distant; job aborted";
    cs.expected = RootCause::LustreBug;
    cs.sim = case_base(seed + 4);
    util::Rng rng{seed + 4};
    ChainEmitter emitter(cs.sim.topology, cs.sim.config.failures, cs.sim.records,
                         cs.sim.symbols, cs.sim.truth, rng);
    jobs::Job job;
    job.job_id = 777002;
    job.apid = job.job_id * 10 + 7;
    job.user = "dara";
    job.app_name = "hydro_io";
    job.start = cs.sim.config.begin + util::Duration::hours(14);
    job.end = job.start + util::Duration::hours(4);
    job.mem_per_node_gb = 30.0;
    job.nodes = {platform::NodeId{64}, platform::NodeId{65}, platform::NodeId{66}};
    const util::TimePoint t = job.start + util::Duration::minutes(80);
    emitter.plant_failure(job.nodes[0], t, RootCause::LustreBug, &job);
    job.outcome = jobs::JobOutcome::NodeFailure;
    job.end = t + util::Duration::minutes(1);
    cs.sim.jobs.push_back(job);
    emitter.emit_job_records(cs.sim.jobs.back());
    // Distant environmental noise.
    cs.sim.records.push_back(node_rec(cs.sim, t - util::Duration::hours(6),
                                      LogSource::Erd, EventType::LinkError, Severity::Warning,
                                      job.nodes[0], "Aries link error"));
    cases.push_back(std::move(cs));
  }

  // Case 5: H/W MCEs -> critical errors with early ec_hw_errors and link
  // errors well before the failure; no job errors. Fail-slow memory.
  {
    CaseStudy cs;
    cs.title = "Case 5: fail-slow memory with early ec_hw_errors";
    cs.internal_indicators = "H/W MCEs -> critical errors; blade neighbours benign";
    cs.external_indicators = "ec_hw_errors & link errors well before the failure";
    cs.expected = RootCause::FailSlowHardware;
    cs.sim = case_base(seed + 5);
    util::Rng rng{seed + 5};
    ChainEmitter emitter(cs.sim.topology, cs.sim.config.failures, cs.sim.records,
                         cs.sim.symbols, cs.sim.truth, rng);
    const util::TimePoint t = cs.sim.config.begin + util::Duration::hours(16);
    emitter.plant_failure(platform::NodeId{128}, t, RootCause::FailSlowHardware, nullptr);
    cases.push_back(std::move(cs));
  }

  return cases;
}

}  // namespace hpcfail::faultsim
