// Spatial failure structure: attribution of failures to "faulty" blades and
// cabinets (Fig 7) and the same-reason fraction of whole-blade failures
// (Fig 18, Observation 8).
#pragma once

#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/log_store.hpp"
#include "platform/topology.hpp"

namespace hpcfail::core {

struct SpatialConfig {
  /// A blade/cabinet is "faulty" for a failure when it logged any health
  /// fault or SEDC warning within +/- this window around the failure.
  util::Duration fault_window = util::Duration::hours(6);
};

struct SpatialAttribution {
  std::size_t failures = 0;
  std::size_t on_faulty_blade = 0;
  std::size_t on_faulty_cabinet = 0;
  [[nodiscard]] double blade_fraction() const noexcept {
    return failures ? static_cast<double>(on_faulty_blade) / static_cast<double>(failures)
                    : 0.0;
  }
  [[nodiscard]] double cabinet_fraction() const noexcept {
    return failures ? static_cast<double>(on_faulty_cabinet) / static_cast<double>(failures)
                    : 0.0;
  }
};

struct BladeFailureGroup {
  platform::BladeId blade;
  std::int64_t day = 0;
  std::size_t failures = 0;
  logmodel::RootCause dominant = logmodel::RootCause::Unknown;
  bool same_reason = false;  ///< all failures in the group share the cause
};

class SpatialAnalyzer {
 public:
  SpatialAnalyzer(const logmodel::LogStore& store, const platform::Topology& topo,
                  SpatialConfig config = {})
      : store_(store), topo_(topo), config_(config) {}

  /// Fig 7: how many failures sit on blades/cabinets that showed controller
  /// faults or warnings around the failure time.
  [[nodiscard]] SpatialAttribution attribute(
      const std::vector<AnalyzedFailure>& failures, util::TimePoint begin,
      util::TimePoint end) const;

  /// Fig 18: per (blade, day) groups with >= min_failures failures, do the
  /// failures share the same inferred root cause?
  [[nodiscard]] std::vector<BladeFailureGroup> blade_groups(
      const std::vector<AnalyzedFailure>& failures, std::size_t min_failures = 2) const;

  /// Fraction of groups with same_reason (0 when no groups).
  [[nodiscard]] static double same_reason_fraction(
      const std::vector<BladeFailureGroup>& groups) noexcept;

  /// Mean cabinet (Manhattan) distance between failures less than
  /// `within` apart in time — the "spatially distant yet temporally close"
  /// measurement backing Observation 8.
  [[nodiscard]] double mean_cabinet_distance_of_close_failures(
      const std::vector<AnalyzedFailure>& failures, util::Duration within) const;

 private:
  [[nodiscard]] bool blade_faulty_near(platform::BladeId blade, util::TimePoint t) const;
  [[nodiscard]] bool cabinet_faulty_near(platform::CabinetId cabinet, util::TimePoint t) const;

  const logmodel::LogStore& store_;
  const platform::Topology& topo_;
  SpatialConfig config_;
};

}  // namespace hpcfail::core
