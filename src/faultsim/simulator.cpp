#include "faultsim/simulator.hpp"

#include <algorithm>
#include <unordered_set>

#include "jobs/workload.hpp"
#include "sensors/sensor_model.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hpcfail::faultsim {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;
using logmodel::RootCause;
using logmodel::Severity;

namespace {

/// Causes whose chain is driven by a running job.
bool job_driven(RootCause c) noexcept { return logmodel::is_application_triggered(c); }

/// Scenario-phase scope: a trace span over the phase plus a counter crediting
/// the log records the phase emitted.  Both are inert when no sink/registry
/// is installed.
class PhaseScope {
 public:
  PhaseScope(const char* span_name, const char* counter_name,
             const std::vector<LogRecord>& records)
      : span_(span_name),
        counter_name_(counter_name),
        records_(records),
        before_(records.size()) {}
  ~PhaseScope() {
    if (util::MetricsRegistry* reg = util::metrics()) {
      reg->counter(counter_name_).add(records_.size() - before_);
    }
  }
  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  util::TraceSpan span_;
  const char* counter_name_;
  const std::vector<LogRecord>& records_;
  std::size_t before_;
};

}  // namespace

struct Simulator::RunState {
  platform::Topology topo;
  util::Rng rng_workload;
  util::Rng rng_failures;
  util::Rng rng_benign;
  util::Rng rng_sensors;
  std::vector<LogRecord> records;
  logmodel::SymbolTable symbols;
  std::vector<jobs::Job> jobs;
  GroundTruth truth;
  ChainEmitter emitter;
  /// Nodes permanently powered off for the run (benign NHF sources and the
  /// 0-degree traces of Fig 11).
  std::unordered_set<std::uint32_t> powered_off;

  RunState(const ScenarioConfig& cfg, util::Rng root)
      : topo(cfg.system.topology),
        rng_workload(root.fork(1)),
        rng_failures(root.fork(2)),
        rng_benign(root.fork(3)),
        rng_sensors(root.fork(4)),
        emitter(topo, cfg.failures, records, symbols, truth, rng_failures) {}
};

Simulator::Simulator(ScenarioConfig config) : config_(std::move(config)) {}

SimulationResult Simulator::run() {
  util::TraceSpan run_span("hpcfail.sim.run");
  RunState st(config_, util::Rng{config_.seed});

  // A fixed, small powered-off population (about 0.2% of the machine).
  const std::uint32_t off_count = std::max<std::uint32_t>(1, st.topo.node_count() / 500);
  for (const auto idx : st.rng_benign.sample_indices(st.topo.node_count(), off_count)) {
    st.powered_off.insert(static_cast<std::uint32_t>(idx));
  }
  if (config_.sensors.force_power_off_node >= 0 &&
      config_.sensors.force_power_off_node < st.topo.node_count()) {
    st.powered_off.insert(static_cast<std::uint32_t>(config_.sensors.force_power_off_node));
  }

  if (config_.enable_jobs) {
    PhaseScope phase("hpcfail.sim.workload", "hpcfail.sim.workload_records", st.records);
    generate_workload(st);
  }
  {
    PhaseScope phase("hpcfail.sim.failures", "hpcfail.sim.failures_records", st.records);
    generate_failures(st);
  }
  {
    PhaseScope phase("hpcfail.sim.benign", "hpcfail.sim.benign_records", st.records);
    generate_benign(st);
  }
  if (config_.sensors.emit_readings) {
    PhaseScope phase("hpcfail.sim.sensor_readings", "hpcfail.sim.sensor_records",
                     st.records);
    generate_sensor_readings(st);
  }

  {
    // Scheduler records render from the final job outcomes, so emit last.
    PhaseScope phase("hpcfail.sim.job_records", "hpcfail.sim.job_log_records",
                     st.records);
    for (const auto& job : st.jobs) st.emitter.emit_job_records(job);
  }

  SimulationResult result{config_, st.topo,          std::move(st.records),
                          std::move(st.symbols), std::move(st.jobs), std::move(st.truth)};
  return result;
}

void Simulator::generate_workload(RunState& st) {
  jobs::WorkloadGenerator gen(st.topo, jobs::AppCatalog::standard(), config_.workload,
                              st.rng_workload);
  st.jobs = gen.generate(config_.begin, config_.end());
}

jobs::Job* Simulator::pick_running_job(RunState& st, util::TimePoint t,
                                       std::uint32_t min_nodes) {
  jobs::Job* best = nullptr;
  double best_score = 0.0;
  for (auto& job : st.jobs) {
    if (job.start > t || job.end <= t) continue;
    if (job.outcome != jobs::JobOutcome::Completed &&
        job.outcome != jobs::JobOutcome::NonZeroExit) {
      continue;  // already doomed by another chain or scheduler-side event
    }
    // Prefer larger jobs (more nodes to take down) with a mild random tilt.
    const double score =
        static_cast<double>(std::min<std::size_t>(job.nodes.size(), 64)) *
        st.rng_failures.uniform(0.5, 1.0) +
        (job.nodes.size() >= min_nodes ? 100.0 : 0.0);
    if (score > best_score) {
      best_score = score;
      best = &job;
    }
  }
  return best;
}

void Simulator::generate_failures(RunState& st) {
  const FailureProcessConfig& fp = config_.failures;
  std::vector<double> weights(fp.cause_weights.begin(), fp.cause_weights.end());
  const bool any_weight = std::any_of(weights.begin(), weights.end(),
                                      [](double w) { return w > 0.0; });
  if (!any_weight) return;

  auto sample_cause = [&]() {
    return static_cast<RootCause>(st.rng_failures.weighted_index(weights));
  };

  auto random_node = [&st]() {
    return platform::NodeId{static_cast<std::uint32_t>(
        st.rng_failures.uniform_int(0, static_cast<std::int64_t>(st.topo.node_count()) - 1))};
  };

  // Plants one burst of `count` failures with a shared root cause starting
  // at `burst_start`, spread over fp.burst_spread_minutes.
  auto plant_burst = [&](util::TimePoint burst_start, RootCause cause, int count) {
    if (count <= 0) return;
    jobs::Job* job = nullptr;
    std::vector<platform::NodeId> victims;

    if (job_driven(cause)) {
      job = pick_running_job(st, burst_start, static_cast<std::uint32_t>(count));
      if (job != nullptr) {
        // Take up to `count` of the job's nodes.
        std::vector<platform::NodeId> pool = job->nodes;
        st.rng_failures.shuffle(pool);
        const auto take = std::min<std::size_t>(pool.size(), static_cast<std::size_t>(count));
        victims.assign(pool.begin(), pool.begin() + static_cast<std::ptrdiff_t>(take));
      } else {
        // No suitable job running: a single non-job-attributed failure.
        victims.push_back(random_node());
      }
    } else {
      // Hardware / unknown causes: sometimes a whole blade, else scattered.
      if (st.rng_failures.bernoulli(fp.hw_burst_same_blade_p)) {
        const platform::BladeId blade{static_cast<std::uint32_t>(st.rng_failures.uniform_int(
            0, static_cast<std::int64_t>(st.topo.blade_count()) - 1))};
        for (const auto n : st.topo.nodes_on_blade(blade)) {
          if (victims.size() < static_cast<std::size_t>(count)) victims.push_back(n);
        }
      }
      while (victims.size() < static_cast<std::size_t>(count)) {
        victims.push_back(random_node());
      }
    }

    // Failures inside a burst are spread over the burst window with
    // exponential inter-arrivals (short MTBFs, Fig 3).
    const double mean_gap_min =
        fp.burst_spread_minutes / std::max<std::size_t>(1, victims.size());
    util::TimePoint t = burst_start;
    std::unordered_set<std::uint32_t> used;
    for (const auto node : victims) {
      if (!used.insert(node.value).second) continue;  // node already failed
      const auto& planted = st.emitter.plant_failure(node, t, cause, job);
      // Blade-level health fault near the failure (Fig 7's weak blade
      // correlation).
      if (st.rng_failures.bernoulli(fp.blade_fault_near_failure_p)) {
        LogRecord bchf;
        bchf.time = t - util::Duration::seconds(st.rng_failures.uniform_int(30, 900));
        bchf.source = LogSource::Controller;
        bchf.type = st.rng_failures.bernoulli(0.6) ? EventType::BladeHeartbeatFault
                                                   : EventType::GetSensorReadingFailed;
        bchf.severity = Severity::Warning;
        bchf.blade = planted.blade;
        bchf.cabinet = planted.cabinet;
        bchf.detail = st.symbols.intern("blade controller health fault");
        st.records.push_back(std::move(bchf));
      }
      t = t + util::Duration::seconds(static_cast<std::int64_t>(
                  st.rng_failures.exponential(1.0 / std::max(0.05, mean_gap_min)) * 60.0));
    }

    if (job != nullptr && !victims.empty()) {
      // The job dies with its nodes.
      job->outcome = cause == RootCause::MemoryExhaustion ? jobs::JobOutcome::OomKilled
                                                          : jobs::JobOutcome::NodeFailure;
      const util::TimePoint cut = t + util::Duration::minutes(1);
      if (job->end > cut) job->end = cut;
    }
  };

  for (int day = 0; day < config_.days; ++day) {
    const util::TimePoint day_start = config_.begin + util::Duration::days(day);
    if (st.rng_failures.bernoulli(fp.failure_day_fraction)) {
      const int bursts = 1 + static_cast<int>(st.rng_failures.poisson(fp.extra_bursts_mean));
      for (int b = 0; b < bursts; ++b) {
        const util::TimePoint burst_start =
            day_start + util::Duration::seconds(st.rng_failures.uniform_int(0, 86399 - 3600));
        const RootCause cause = sample_cause();
        // The first (dominant) burst is the big one; extra bursts are small.
        const int count =
            b == 0 ? 2 + static_cast<int>(st.rng_failures.poisson(
                             std::max(0.0, fp.dominant_burst_mean - 2.0)))
                   : 1 + static_cast<int>(st.rng_failures.poisson(1.0));
        plant_burst(burst_start, cause, count);
      }
    }
    // Isolated failures, independent causes.
    const auto isolated = st.rng_failures.poisson(fp.isolated_failures_per_day);
    for (std::int64_t i = 0; i < isolated; ++i) {
      const util::TimePoint t =
          day_start + util::Duration::seconds(st.rng_failures.uniform_int(0, 86399));
      plant_burst(t, sample_cause(), 1);
    }
  }
}

void Simulator::generate_benign(RunState& st) {
  const BenignProcessConfig& bp = config_.benign;
  const std::uint32_t blades = st.topo.blade_count();
  const std::uint32_t cabinets = st.topo.cabinet_count();

  auto random_node = [&st]() {
    return platform::NodeId{static_cast<std::uint32_t>(
        st.rng_benign.uniform_int(0, static_cast<std::int64_t>(st.topo.node_count()) - 1))};
  };
  auto random_blade = [&st, blades]() {
    return platform::BladeId{static_cast<std::uint32_t>(
        st.rng_benign.uniform_int(0, static_cast<std::int64_t>(blades) - 1))};
  };
  auto day_time = [&st](util::TimePoint day_start) {
    return day_start + util::Duration::seconds(st.rng_benign.uniform_int(0, 86399));
  };

  // Stable deviant-blade population for the whole run; each carries its
  // own sensor state so the warning storms are genuine threshold crossings.
  std::vector<std::pair<platform::BladeId, sensors::BladeSensors>> deviant_blades;
  const auto deviant_count =
      static_cast<std::uint32_t>(bp.deviant_blade_fraction * static_cast<double>(blades));
  for (const auto idx : st.rng_benign.sample_indices(blades, deviant_count)) {
    deviant_blades.emplace_back(
        platform::BladeId{static_cast<std::uint32_t>(idx)},
        sensors::BladeSensors(st.rng_sensors.fork(0x5edc0000u + idx), /*deviant=*/true));
  }

  // Cabinets of today's failures get priority in the noisy subset
  // (cabinet_fault_near_failure_p), the rest is random.
  std::vector<std::vector<platform::CabinetId>> failure_cabinets_by_day(
      static_cast<std::size_t>(config_.days));
  for (const auto& f : st.truth.failures) {
    const auto day = (f.fail_time - config_.begin).usec / util::Duration::days(1).usec;
    if (day >= 0 && day < config_.days) {
      failure_cabinets_by_day[static_cast<std::size_t>(day)].push_back(f.cabinet);
    }
  }

  static constexpr EventType kSedcKinds[] = {EventType::SedcAirVelocityWarning,
                                             EventType::SedcTemperatureWarning,
                                             EventType::SedcVoltageWarning,
                                             EventType::SedcFanSpeedWarning};
  static constexpr double kSedcWeights[] = {0.45, 0.3, 0.15, 0.10};

  for (int day = 0; day < config_.days; ++day) {
    const util::TimePoint day_start = config_.begin + util::Duration::days(day);

    // Benign NHFs: powered-off nodes and skipped heartbeats.
    const auto nhfs = st.rng_benign.poisson(bp.benign_nhf_per_day);
    for (std::int64_t i = 0; i < nhfs; ++i) {
      const bool power_off = st.rng_benign.bernoulli(bp.nhf_power_off_fraction);
      platform::NodeId node;
      if (power_off && !st.powered_off.empty()) {
        auto it = st.powered_off.begin();
        std::advance(it, st.rng_benign.uniform_int(
                             0, static_cast<std::int64_t>(st.powered_off.size()) - 1));
        node = platform::NodeId{*it};
      } else {
        node = random_node();
      }
      st.emitter.emit_benign_nhf(node, day_time(day_start), power_off);
    }

    // Benign NVFs (rare).
    if (st.rng_benign.bernoulli(bp.benign_nvf_per_month / 30.0)) {
      st.emitter.emit_benign_nvf(random_node(), day_time(day_start));
    }

    // SEDC warning storms on deviant blades: the controller samples each
    // blade's sensors on its cadence and emits a warning per out-of-band
    // reading, carrying the actual reading as the value.
    if (bp.sedc_sample_interval_minutes > 0.0) {
      static constexpr sensors::SensorKind kSampledKinds[] = {
          sensors::SensorKind::AirVelocity, sensors::SensorKind::CpuTemperature,
          sensors::SensorKind::Voltage, sensors::SensorKind::FanSpeed};
      static constexpr logmodel::EventType kWarningFor[] = {
          EventType::SedcAirVelocityWarning, EventType::SedcTemperatureWarning,
          EventType::SedcVoltageWarning, EventType::SedcFanSpeedWarning};
      for (auto& [blade, model] : deviant_blades) {
        double minute = 0.0;
        while (minute < 1440.0) {
          model.step(bp.sedc_sample_interval_minutes);
          const util::TimePoint t =
              day_start + util::Duration::seconds(static_cast<std::int64_t>(minute * 60.0));
          for (std::size_t k = 0; k < 4; ++k) {
            if (model.violates(kSampledKinds[k])) {
              st.emitter.emit_sedc_warning(blade, t, kWarningFor[k],
                                           model.reading(kSampledKinds[k]));
            }
          }
          minute += bp.sedc_sample_interval_minutes;
        }
      }
    }

    // Transient SEDC warnings on random healthy blades.
    const auto transients = st.rng_benign.poisson(bp.transient_sedc_warnings_per_day);
    for (std::int64_t i = 0; i < transients; ++i) {
      const std::size_t kind = st.rng_benign.weighted_index(kSedcWeights);
      st.emitter.emit_sedc_warning(random_blade(), day_time(day_start), kSedcKinds[kind],
                                   st.rng_benign.uniform(0.4, 1.7));
    }

    // Cabinet chatter concentrated on a daily noisy subset.
    if (bp.cabinet_faults_per_day > 0.0 && cabinets > 0) {
      std::vector<platform::CabinetId> noisy;
      for (const auto cab : failure_cabinets_by_day[static_cast<std::size_t>(day)]) {
        if (st.rng_benign.bernoulli(config_.failures.cabinet_fault_near_failure_p)) {
          noisy.push_back(cab);
        }
      }
      const auto extra = std::max<std::uint32_t>(1, cabinets / 6);
      for (const auto idx : st.rng_benign.sample_indices(cabinets, extra)) {
        noisy.push_back(platform::CabinetId{static_cast<std::uint32_t>(idx)});
      }
      const auto faults = st.rng_benign.poisson(bp.cabinet_faults_per_day);
      for (std::int64_t i = 0; i < faults; ++i) {
        const auto& cab = noisy[static_cast<std::size_t>(
            st.rng_benign.uniform_int(0, static_cast<std::int64_t>(noisy.size()) - 1))];
        st.emitter.emit_cabinet_fault(cab, day_time(day_start));
      }
    }

    // Benign per-node error populations (Fig 10).
    struct ErrorPop {
      double rate;
      EventType type;
    };
    const ErrorPop pops[] = {
        {bp.benign_hw_error_nodes_per_day, EventType::HardwareError},
        {bp.benign_mce_nodes_per_day, EventType::MachineCheckException},
        {bp.benign_lustre_nodes_per_day, EventType::LustreError},
    };
    for (const auto& pop : pops) {
      const auto nodes = st.rng_benign.poisson(pop.rate);
      for (std::int64_t i = 0; i < nodes; ++i) {
        st.emitter.emit_benign_node_errors(random_node(), day_time(day_start), pop.type);
      }
    }

    // Hung-task storms (institutional cluster).
    const auto hung = st.rng_benign.poisson(bp.hung_task_nodes_per_day);
    for (std::int64_t i = 0; i < hung; ++i) {
      st.emitter.emit_hung_task(random_node(), day_time(day_start));
    }

    // Benign oom-killer and software-error populations.
    const auto ooms = st.rng_benign.poisson(bp.benign_oom_nodes_per_day);
    for (std::int64_t i = 0; i < ooms; ++i) {
      st.emitter.emit_benign_oom(random_node(), day_time(day_start));
    }
    const auto sw = st.rng_benign.poisson(bp.benign_sw_error_nodes_per_day);
    for (std::int64_t i = 0; i < sw; ++i) {
      st.emitter.emit_benign_sw_error(random_node(), day_time(day_start));
    }

    // Healthy look-alike episodes (hardware error -> MCE without failure).
    const auto episodes = st.rng_benign.poisson(bp.multi_error_episode_nodes_per_day);
    for (std::int64_t i = 0; i < episodes; ++i) {
      st.emitter.emit_multi_error_episode(
          random_node(), day_time(day_start),
          st.rng_benign.bernoulli(bp.multi_error_external_fraction));
    }

    // HSN lane degrades; most fail over cleanly.
    const auto degrades = st.rng_benign.poisson(bp.lane_degrades_per_day);
    for (std::int64_t i = 0; i < degrades; ++i) {
      st.emitter.emit_lane_degrade(random_blade(), day_time(day_start),
                                   !st.rng_benign.bernoulli(bp.failover_failure_fraction));
    }

    // Scheduled maintenance: one whole cabinet intentionally down for hours.
    if (st.rng_benign.bernoulli(bp.maintenance_windows_per_month / 30.0)) {
      const platform::CabinetId cabinet{static_cast<std::uint32_t>(st.rng_benign.uniform_int(
          0, static_cast<std::int64_t>(st.topo.cabinet_count()) - 1))};
      const util::TimePoint t = day_start + util::Duration::hours(6);
      const util::Duration downtime = util::Duration::hours(st.rng_benign.uniform_int(2, 8));
      for (std::uint32_t n = 0; n < st.topo.node_count(); ++n) {
        const platform::NodeId node{n};
        if (st.topo.cabinet_of(node) == cabinet) {
          st.emitter.emit_intended_shutdown(node, t, downtime);
        }
      }
    }

    // System-wide outage: a file-system incident downs a node swath.
    if (st.rng_benign.bernoulli(bp.swo_per_month / 30.0)) {
      const auto count = static_cast<std::size_t>(
          bp.swo_node_fraction * static_cast<double>(st.topo.node_count()));
      std::vector<platform::NodeId> swo_nodes;
      for (const auto idx : st.rng_benign.sample_indices(st.topo.node_count(), count)) {
        swo_nodes.push_back(platform::NodeId{static_cast<std::uint32_t>(idx)});
      }
      st.emitter.emit_swo(swo_nodes, day_time(day_start));
    }

    // Background ec_hw_errors during healthy times.
    const auto background = st.rng_benign.poisson(bp.background_ec_hw_errors_per_day);
    for (std::int64_t i = 0; i < background; ++i) {
      st.emitter.emit_background_ec_hw_error(random_blade(), day_time(day_start));
    }
  }
}

void Simulator::generate_sensor_readings(RunState& st) {
  const SensorProcessConfig& sp = config_.sensors;
  const std::uint32_t blades = std::min(sp.reading_blade_count, st.topo.blade_count());
  if (blades == 0 || sp.reading_interval_minutes <= 0.0) return;

  const double total_minutes = static_cast<double>(config_.days) * 1440.0;
  for (std::uint32_t b = 0; b < blades; ++b) {
    const platform::BladeId blade{b};
    sensors::BladeSensors model(st.rng_sensors.fork(b), /*deviant=*/false);
    const auto nodes = st.topo.nodes_on_blade(blade);
    double minute = 0.0;
    while (minute < total_minutes) {
      model.step(sp.reading_interval_minutes);
      const util::TimePoint t =
          config_.begin + util::Duration::seconds(static_cast<std::int64_t>(minute * 60.0));
      for (const auto node : nodes) {
        LogRecord r;
        r.time = t;
        r.source = LogSource::Controller;
        r.type = EventType::SedcReading;
        r.severity = Severity::Info;
        r.node = node;
        r.blade = blade;
        r.cabinet = st.topo.cabinet_of_blade(blade);
        r.detail = st.symbols.intern("CpuTemperature");
        const bool off = st.powered_off.contains(node.value);
        r.value = off ? 0.0
                      : model.reading(sensors::SensorKind::CpuTemperature) +
                            st.rng_sensors.normal(0.0, 0.4);
        st.records.push_back(std::move(r));
      }
      minute += sp.reading_interval_minutes;
    }
  }
}

}  // namespace hpcfail::faultsim
