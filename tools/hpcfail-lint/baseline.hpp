// Baseline gating for hpcfail-lint: fail only on regressions.
//
// A baseline file is a committed list of accepted findings, one per line:
//
//     file|check|message
//
// Line numbers are deliberately NOT part of the key: an accepted finding
// survives unrelated edits above it.  `#`-prefixed lines and blank lines are
// comments.  apply_baseline() drops matching diagnostics from the report and
// returns what it did, so the CLI can print both the suppressed count and
// any stale entries (baseline lines no finding matched — candidates for
// deletion, reported so the file cannot rot silently).
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace hpcfail::lint {

struct Diagnostic;
struct Report;

/// One parsed baseline entry (a `file|check|message` line).
struct BaselineEntry {
  std::string file;
  std::string check;
  std::string message;
};

/// The stable identity of a diagnostic: "file|check|message".
[[nodiscard]] std::string baseline_key(const Diagnostic& diagnostic);

/// What apply_baseline() did to the report.
struct BaselineResult {
  std::size_t suppressed = 0;            ///< findings dropped as baselined
  std::vector<std::string> stale_keys;   ///< entries no current finding matched
};

/// Parses a baseline file.  A missing file is an empty baseline (the
/// committed file starts empty); a malformed line (fewer than two '|') is
/// kept as a message-less entry that can never match, so it surfaces as
/// stale rather than silently suppressing.
[[nodiscard]] std::vector<BaselineEntry> load_baseline(const std::filesystem::path& path);

/// Removes diagnostics matching a baseline entry from `report` and reports
/// the suppressed count plus stale entries.
[[nodiscard]] BaselineResult apply_baseline(Report& report,
                                            const std::vector<BaselineEntry>& baseline);

/// Serializes the report's diagnostics as baseline lines (sorted, deduped),
/// with a format header comment — the `--write-baseline` output.
[[nodiscard]] std::string render_baseline(const Report& report);

}  // namespace hpcfail::lint
