file(REMOVE_RECURSE
  "CMakeFiles/fig11_cpu_temperature.dir/fig11_cpu_temperature.cpp.o"
  "CMakeFiles/fig11_cpu_temperature.dir/fig11_cpu_temperature.cpp.o.d"
  "fig11_cpu_temperature"
  "fig11_cpu_temperature.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_cpu_temperature.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
