// Fixed-size thread pool with a blocking task queue plus a chunked
// parallel_for.  The analysis pipeline shards work per day / per node and
// runs the shards here; determinism is preserved because shards never share
// mutable state and results are merged in index order.
//
// Observability (util/metrics.hpp): when a MetricsRegistry is installed the
// pool exports, under `hpcfail.pool.*`:
//   - queue_depth        gauge, tasks waiting in the queue
//   - tasks_completed    counter
//   - task_latency_us    histogram, enqueue -> completion per task
//   - worker<i>.busy_us  counter per worker, cumulative task run time
// Instruments bind lazily inside the queue mutex, so an uninstrumented
// pool pays one atomic load + integer compare per submit; clock reads
// happen only while a registry is installed.  The registry must stay
// installed (and alive) until the pool is idle or destroyed.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcfail::util {

class Counter;
class Gauge;
class Histogram;
class MetricsRegistry;

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    enqueue([task] { (*task)(); });
    return result;
  }

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// Work is split into contiguous chunks, one future per chunk.  Exceptions
  /// from any iteration propagate to the caller (first chunk wins); the call
  /// still joins every chunk before throwing, so `fn` is never referenced
  /// after return.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) over contiguous ranges covering [0, n).
  void parallel_for_ranges(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  /// Instrument slots resolved against the currently installed registry.
  struct Instruments {
    Gauge* queue_depth = nullptr;
    Counter* tasks_completed = nullptr;
    Histogram* task_latency_us = nullptr;
    std::vector<Counter*> worker_busy_us;  ///< one per worker
  };

  void enqueue(std::function<void()> fn);
  void worker_loop(std::size_t worker_index);
  /// Must hold mutex_.  Rebinds instruments_ when the metrics install
  /// generation changed since the last call; returns the current binding
  /// (nullptr members when metrics are dark).  Keyed on the generation,
  /// not the registry address: a new registry can reuse a destroyed one's
  /// address, which would alias a stale binding to freed instruments.
  const Instruments& bound_instruments();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
  std::uint64_t bound_metrics_generation_ = 0;  ///< guarded by mutex_
  Instruments instruments_;                     ///< guarded by mutex_
};

/// Process-wide default pool (lazily constructed, hardware concurrency).
[[nodiscard]] ThreadPool& default_pool();

}  // namespace hpcfail::util
