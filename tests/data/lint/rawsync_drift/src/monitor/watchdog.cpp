// Fixture: raw concurrency/ownership primitives outside src/util.
#include <thread>

void drifted() {
  std::thread t([] {});
  t.detach();
  int* leak = new int(7);
  const int frozen = 3;
  int* thawed = const_cast<int*>(&frozen);
  *thawed = *leak;
}

void tolerated() {
  // hpcfail-lint: allow(raw-sync) -- fixture exercises the reasoned allow
  std::thread t([] {});
  t.join();
}

void rejected() {
  // hpcfail-lint: allow(raw-sync)
  int* p = new int(1);
  delete p;
}
