// Quickstart: simulate one week of an S1-like Cray XC30, render the raw
// multi-source logs, parse them back, and run the full failure diagnosis —
// the end-to-end path every experiment in this repository uses.
//
//   ./examples/quickstart [days] [seed]
#include <cstdlib>
#include <iostream>

#include "core/engine.hpp"
#include "core/temporal.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;

  const int days = argc > 1 ? std::atoi(argv[1]) : 7;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 42;

  // 1. Simulate the platform: workload, failure chains, benign faults.
  faultsim::ScenarioConfig scenario =
      faultsim::scenario_preset(platform::SystemName::S1, days, seed);
  faultsim::SimulationResult sim = faultsim::Simulator(scenario).run();
  std::cout << "simulated  " << sim.records.size() << " structured events, "
            << sim.jobs.size() << " jobs, " << sim.truth.failure_count()
            << " planted failures\n";

  // 2. Render raw text logs (console/messages/controller/ERD/scheduler).
  const loggen::Corpus corpus = loggen::build_corpus(sim);
  std::cout << "rendered   " << corpus.bytes() / 1024 << " KiB of raw log text\n";

  // 3. Parse the text back into a structured store + job table.
  const parsers::ParsedCorpus parsed = parsers::parse_corpus(corpus);
  std::cout << "parsed     " << parsed.parsed_records << " records ("
            << parsed.skipped_lines << " lines skipped)\n";

  // 4. One engine run: detection, diagnosis, lead times, external
  //    correspondence, clusters and breakdowns over the scenario window.
  const core::AnalysisEngine engine;
  const core::AnalysisResult analysis =
      engine.analyze(parsed.store, &parsed.jobs, scenario.begin, scenario.end());
  const auto& failures = analysis.failures;
  std::cout << "diagnosed  " << failures.size() << " node failures\n\n";

  std::cout << core::render_cause_table(analysis.breakdown,
                                        "Root-cause breakdown (" + corpus.system.label + ", " +
                                            std::to_string(days) + " days)")
            << '\n';

  // 5. Headline statistics.
  const core::TemporalAnalyzer temporal(failures);
  const auto gaps = temporal.inter_failure_minutes(scenario.begin, scenario.end());
  if (!gaps.empty()) {
    stats::StreamingStats s;
    for (const double g : gaps) s.add(g);
    std::cout << "mean time between failures: " << util::fmt_double(s.mean(), 1)
              << " min (n=" << gaps.size() << ")\n";
  }

  const auto& summary = analysis.lead_time_summary;
  std::cout << "lead-time enhanceable failures: "
            << util::fmt_pct(summary.enhanceable_fraction())
            << ", enhancement factor: " << util::fmt_double(summary.enhancement_factor(), 1)
            << "x\n";

  const auto& shares = analysis.layers;
  std::cout << "layer shares: hardware " << util::fmt_pct(shares.hardware) << ", software "
            << util::fmt_pct(shares.software) << ", application "
            << util::fmt_pct(shares.application) << "\n";
  return 0;
}
