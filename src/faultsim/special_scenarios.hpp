// Hand-built scenarios for experiments that the stochastic scenario process
// cannot target precisely:
//
//  - the memory over-allocation day of Fig 17 (53 failures across 16 jobs,
//    with per-job overallocated-vs-failed node counts);
//  - the five root-cause case studies of Table V.
#pragma once

#include <string>
#include <vector>

#include "faultsim/simulator.hpp"

namespace hpcfail::faultsim {

struct OverallocationJobPlan {
  std::uint32_t nodes = 0;          ///< nodes allocated to the job
  std::uint32_t overallocated = 0;  ///< nodes whose memory was over-committed
  std::uint32_t failures = 0;       ///< overallocated nodes that actually fail
};

/// The Fig 17 plan: 16 jobs, 53 failures. J5/J8 lose every overallocated
/// node; J1 loses 1 of 600; J16 loses 6 of 683.
[[nodiscard]] std::vector<OverallocationJobPlan> fig17_job_plan();

/// Builds the over-allocation day corpus on an S1-sized machine.
[[nodiscard]] SimulationResult overallocation_day(std::uint64_t seed);

struct CaseStudy {
  std::string title;
  std::string internal_indicators;   ///< Table V column 2 (what was planted)
  std::string external_indicators;   ///< Table V column 3
  logmodel::RootCause expected;      ///< ground-truth root cause
  SimulationResult sim;
};

/// The five Table V cases, each as an isolated one-day corpus.
[[nodiscard]] std::vector<CaseStudy> build_case_studies(std::uint64_t seed);

}  // namespace hpcfail::faultsim
