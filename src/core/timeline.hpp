// Per-node state timelines reconstructed from the logs: when was each node
// up, down, or in NHC-suspect state?  From the timelines the analyzer
// derives the fleet metrics the paper's introduction motivates — machine
// availability, node-hours lost to failures, and repair-time (reboot)
// statistics.
#pragma once

#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/log_store.hpp"
#include "stats/summary.hpp"

namespace hpcfail::core {

enum class NodeState : std::uint8_t { Up, Suspect, Down };

[[nodiscard]] constexpr std::string_view to_string(NodeState s) noexcept {
  switch (s) {
    case NodeState::Up: return "Up";
    case NodeState::Suspect: return "Suspect";
    case NodeState::Down: return "Down";
  }
  return "?";
}

struct StateInterval {
  util::TimePoint begin;
  util::TimePoint end;
  NodeState state = NodeState::Up;
};

struct NodeTimeline {
  platform::NodeId node;
  /// Contiguous, non-overlapping intervals covering the analysis window.
  std::vector<StateInterval> intervals;

  [[nodiscard]] NodeState state_at(util::TimePoint t) const noexcept;
  [[nodiscard]] util::Duration time_in(NodeState state) const noexcept;
};

struct FleetAvailability {
  double availability = 1.0;      ///< up-node-hours / total-node-hours
  double node_hours_lost = 0.0;   ///< down + suspect node-hours
  std::size_t down_intervals = 0;
  /// Time from failure to the subsequent reboot, per repair.
  stats::StreamingStats repair_minutes;
};

class TimelineBuilder {
 public:
  /// `node_count` bounds the fleet for availability math (nodes that never
  /// log anything count as always-up).
  TimelineBuilder(const logmodel::LogStore& store, std::uint32_t node_count)
      : store_(store), node_count_(node_count) {}

  /// Timeline of one node over [begin, end).  State transitions:
  ///   failure marker      -> Down (until NodeBoot)
  ///   NhcSuspectMode      -> Suspect (until NodeBoot or failure)
  ///   NodeBoot            -> Up
  [[nodiscard]] NodeTimeline build(platform::NodeId node, util::TimePoint begin,
                                   util::TimePoint end) const;

  /// Aggregates availability over every node that appears in the store.
  [[nodiscard]] FleetAvailability fleet_availability(util::TimePoint begin,
                                                     util::TimePoint end) const;

 private:
  const logmodel::LogStore& store_;
  std::uint32_t node_count_;
};

}  // namespace hpcfail::core
