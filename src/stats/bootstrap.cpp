#include "stats/bootstrap.hpp"

#include <algorithm>
#include <vector>

#include "stats/ecdf.hpp"

namespace hpcfail::stats {

BootstrapResult bootstrap_ci(std::span<const double> sample,
                             const std::function<double(std::span<const double>)>& statistic,
                             std::size_t resamples, double confidence, util::Rng rng) {
  BootstrapResult result;
  if (sample.empty()) return result;
  result.point = statistic(sample);
  if (sample.size() == 1 || resamples == 0) {
    result.lo = result.hi = result.point;
    return result;
  }
  std::vector<double> resample(sample.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  const auto n = static_cast<std::int64_t>(sample.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& x : resample) {
      x = sample[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    stats.push_back(statistic(resample));
  }
  const Ecdf dist{stats};
  const double alpha = (1.0 - confidence) / 2.0;
  result.lo = dist.quantile(alpha);
  result.hi = dist.quantile(1.0 - alpha);
  return result;
}

BootstrapResult bootstrap_mean_ci(std::span<const double> sample, std::size_t resamples,
                                  double confidence, util::Rng rng) {
  return bootstrap_ci(
      sample,
      [](std::span<const double> s) {
        double sum = 0.0;
        for (double x : s) sum += x;
        return s.empty() ? 0.0 : sum / static_cast<double>(s.size());
      },
      resamples, confidence, rng);
}

}  // namespace hpcfail::stats
