// Ground truth the fault injector records while planting failures.
//
// In the paper this role was played by cluster administrators who confirmed
// which log signatures were real failures.  Here the injector keeps the
// ledger; the analysis pipeline never reads it — only the tests and benches
// use it to score detector recall, root-cause accuracy and lead-time
// estimates against what was actually planted.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "logmodel/cause.hpp"
#include "platform/ids.hpp"
#include "util/time.hpp"

namespace hpcfail::faultsim {

struct PlantedFailure {
  platform::NodeId node;
  platform::BladeId blade;
  platform::CabinetId cabinet;
  util::TimePoint fail_time;
  logmodel::RootCause cause = logmodel::RootCause::Unknown;
  std::int64_t job_id = -1;  ///< job whose execution triggered the chain
  std::int64_t apid = -1;
  bool fail_slow = false;    ///< external early indicators were emitted
  /// Earliest fault-indicative internal record of the chain.
  util::TimePoint first_internal_indicator;
  /// Earliest correlated external record; equals fail_time when none exists.
  util::TimePoint first_external_indicator;
  bool has_external_indicator = false;
  /// Kernel module the injected stack trace leads with (empty when the
  /// chain has no call trace).
  std::string stack_module;
};

struct BenignCounts {
  std::uint64_t nhf_power_off = 0;       ///< NHFs from powered-off nodes
  std::uint64_t nhf_skipped_heartbeat = 0;
  std::uint64_t nvf_benign = 0;
  std::uint64_t sedc_warnings = 0;
  std::uint64_t cabinet_faults = 0;
  std::uint64_t node_hw_errors = 0;      ///< non-failing nodes with hw errors
  std::uint64_t node_mce_triggers = 0;
  std::uint64_t node_lustre_errors = 0;
  std::uint64_t hung_task_nodes = 0;     ///< S5-style non-failing call traces
  std::uint64_t intended_shutdown_nodes = 0;  ///< maintenance shutdowns
  std::uint64_t swo_events = 0;               ///< system-wide outages
  std::uint64_t swo_shutdown_nodes = 0;       ///< nodes taken down by SWOs
};

struct GroundTruth {
  std::vector<PlantedFailure> failures;
  BenignCounts benign;

  [[nodiscard]] std::size_t failure_count() const noexcept { return failures.size(); }
};

}  // namespace hpcfail::faultsim
