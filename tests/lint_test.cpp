// hpcfail-lint self-tests: each check runs against a deliberately drifted
// fixture tree under tests/data/lint/ and must report the exact gcc-style
// diagnostics, byte for byte — the lint's output contract is part of its
// interface (CI annotates from it).  The real tree must come back clean.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>
#include <vector>

#include "lint.hpp"

namespace {

using hpcfail::lint::Report;
using hpcfail::lint::run_checks;

std::filesystem::path fixture(const char* name) {
  return std::filesystem::path(HPCFAIL_LINT_FIXTURES) / name;
}

std::vector<std::string> rendered(const Report& report) {
  std::vector<std::string> out;
  out.reserve(report.diagnostics.size());
  for (const auto& d : report.diagnostics) out.push_back(d.to_string());
  return out;
}

TEST(LintErdTable, DriftedEmitterTemplateIsDiagnosedExactly) {
  const Report report = run_checks(fixture("erd_drift"), {"erd-table"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/loggen/renderer.cpp:9: error: [erd-table] 'ec_node_voltage_falt' "
                "(emitted ERD event name) has no counterpart in "
                "src/parsers/line_classifier.cpp",
                "src/loggen/renderer.cpp:10: error: [erd-table] 'ec_link_error' maps to "
                "LinkError here but to LaneDegrade in src/parsers/line_classifier.cpp",
                "src/parsers/line_classifier.cpp:8: error: [erd-table] "
                "'ec_node_voltage_fault' (parsed ERD event name) has no counterpart in "
                "src/loggen/renderer.cpp",
                "src/parsers/line_classifier.cpp:9: error: [erd-table] 'ec_link_error' "
                "maps to LaneDegrade here but to LinkError in src/loggen/renderer.cpp",
            }));
}

TEST(LintEventNames, DroppedAndReorderedNameTableIsDiagnosed) {
  const Report report = run_checks(fixture("event_drift"), {"event-names"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/logmodel/event_type.cpp:6: error: [event-names] kEventNames has 2 "
                "entries but EventType has 3 enumerators (to_string/"
                "event_type_from_string will misreport)",
                "src/logmodel/event_type.cpp:8: error: [event-names] kEventNames[1] is "
                "\"MachineCheckException\" but enumerator #1 is KernelOops (declared at "
                "src/logmodel/event_type.hpp:7)",
            }));
}

TEST(LintBannedPattern, NondeterministicSeedingIsDiagnosedAndSuppressible) {
  const Report report = run_checks(fixture("banned"), {"banned-pattern"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/faultsim/seeding.cpp:6: error: [banned-pattern] libc rand()/srand() "
                "is banned; use util::Rng (deterministic xoshiro256**)",
                "src/faultsim/seeding.cpp:6: error: [banned-pattern] wall-clock seeding "
                "is banned; simulation time comes from the scenario config",
                "src/faultsim/seeding.cpp:7: error: [banned-pattern] libc rand()/srand() "
                "is banned; use util::Rng (deterministic xoshiro256**)",
            }));
}

TEST(LintHeaderHygiene, MissingPragmaOnceAndUsingNamespaceAreDiagnosed) {
  const Report report = run_checks(fixture("hygiene"), {"header-hygiene"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/core/bad_header.hpp:1: error: [header-hygiene] header lacks "
                "#pragma once in its first 30 lines",
                "src/core/bad_header.hpp:5: error: [header-hygiene] `using namespace` "
                "in a header leaks into every includer",
            }));
}

TEST(LintCorpusFiles, DriftedFileNameTableIsDiagnosedExactly) {
  const Report report = run_checks(fixture("corpus_drift"), {"corpus-files"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/loggen/corpus.cpp:6: error: [corpus-files] 'p0-mesages.log' "
                "(corpus file name) has no counterpart in FORMATS.md",
                "FORMATS.md:6: error: [corpus-files] 'p0-messages.log' (documented "
                "corpus file) has no counterpart in src/loggen/corpus.cpp",
                "FORMATS.md:7: error: [corpus-files] 'erd.log' (documented corpus "
                "file) has no counterpart in src/loggen/corpus.cpp",
            }));
}

TEST(LintBenchPipeline, HandWiredFigureBenchIsDiagnosed) {
  const Report report = run_checks(fixture("bench_drift"), {"bench-pipeline"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "bench/fig99_handwired.cpp:7: error: [bench-pipeline] figure bench "
                "calls analyze_failures() directly; route it through "
                "bench::run_pipeline or core::AnalysisEngine",
                "bench/fig99_handwired.cpp:1: error: [bench-pipeline] figure bench "
                "never uses bench::run_pipeline/run_system or core::AnalysisEngine; "
                "hand-wired analysis drifts from the shared pipeline",
            }));
}

TEST(LintBenchPipeline, MissingBenchDirectoryIsDiagnosed) {
  const Report report = run_checks(fixture("hygiene"), {"bench-pipeline"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "bench:0: error: [bench-pipeline] no bench/ directory under repo root",
            }));
}

TEST(LintMetricNaming, DriftedInstrumentNamesAreDiagnosedExactly) {
  const Report report = run_checks(fixture("metric_drift"), {"metric-naming"});
  EXPECT_EQ(rendered(report),
            (std::vector<std::string>{
                "src/util/instrumented.cpp:8: error: [metric-naming] metric/span name "
                "'hpcfail.Ingest.BytesRead' drifts from hpcfail.<layer>.<snake_case> "
                "(lowercase snake_case segments, at least two after 'hpcfail')",
                "src/util/instrumented.cpp:9: error: [metric-naming] metric/span name "
                "'hpcfail.pool' drifts from hpcfail.<layer>.<snake_case> (lowercase "
                "snake_case segments, at least two after 'hpcfail')",
                "src/util/instrumented.cpp:10: error: [metric-naming] instrument name "
                "'ingest.chunks' is not rooted under 'hpcfail.'; metric and span names "
                "follow hpcfail.<layer>.<snake_case>",
                "src/util/instrumented.cpp:11: error: [metric-naming] metric/span name "
                "prefix 'hpcfail.pool.Worker' drifts from hpcfail.<layer>.<snake_case> "
                "(complete segments before the runtime suffix must be lowercase "
                "snake_case)",
                "src/util/instrumented.cpp:13: error: [metric-naming] metric/span name "
                "'hpcfail.engine.Analyzer' drifts from hpcfail.<layer>.<snake_case> "
                "(lowercase snake_case segments, at least two after 'hpcfail')",
            }));
}

TEST(LintClean, ConsistentFixtureTreePasses) {
  const Report report = run_checks(
      fixture("clean"), {"erd-table", "event-names", "corpus-files", "banned-pattern",
                         "header-hygiene", "bench-pipeline", "metric-naming"});
  EXPECT_TRUE(report.ok()) << (report.ok() ? std::string{}
                                           : rendered(report).front());
}

TEST(LintClean, MissingFilesAreReportedNotFatal) {
  const Report report = run_checks(fixture("hygiene"), {"erd-table"});
  ASSERT_FALSE(report.ok());
  for (const auto& d : report.diagnostics) {
    EXPECT_EQ(d.line, 0u);
    EXPECT_NE(d.message.find("cannot read file"), std::string::npos);
  }
}

TEST(LintDispatch, UnknownCheckNameIsAUsageDiagnostic) {
  const Report report = run_checks(fixture("clean"), {"no-such-check"});
  ASSERT_EQ(report.diagnostics.size(), 1u);
  EXPECT_EQ(report.diagnostics[0].check, "usage");
}

// The gate the ctest target enforces, exercised in-process as well so a
// plain `ctest` run fails locally the moment the real universes drift.
TEST(LintRealTree, AllChecksPassOnTheRepo) {
  const Report report = run_checks(HPCFAIL_REPO_ROOT);
  EXPECT_TRUE(report.ok()) << (report.ok() ? std::string{}
                                           : report.diagnostics.front().to_string());
}

}  // namespace
