// RAII trace spans for pipeline observability, exported in the
// chrome://tracing "Trace Event Format" (complete events, ph:"X").
//
// Usage at an instrumentation site:
//
//   util::TraceSpan span("hpcfail.engine.run");
//   ... work ...            // span records [construction, destruction)
//
// When no recorder is installed (the default) a TraceSpan costs one
// relaxed atomic load and a branch: no clock read, no allocation, no lock.
// When a recorder is installed the span reads the steady clock twice and
// appends one event under the recorder's mutex at destruction.
//
// Timestamps are microseconds relative to the recorder's construction
// (steady clock), so traces start near ts=0 and are immune to wall-clock
// steps.  Thread ids are densified to small integers in first-seen order.
// Spans on one thread nest strictly (RAII scoping), which is what
// chrome://tracing renders as a flame graph; the schema test pins the
// containment property.
//
// Span names follow the same `hpcfail.<layer>.<snake_case>` convention as
// metric names (hpcfail-lint metric-naming check).  Dynamic names (e.g.
// per-analyzer spans) must be sanitized through trace_name_segment().
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::util {

struct TraceEvent {
  std::string name;
  std::uint32_t tid = 0;   ///< densified thread id, first-seen order
  std::int64_t ts_us = 0;  ///< start, microseconds since recorder epoch
  std::int64_t dur_us = 0; ///< duration, clamped non-negative
};

class TraceRecorder {
 public:
  TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// Microseconds since this recorder's construction (steady clock).
  [[nodiscard]] std::int64_t now_us() const noexcept;

  /// Appends one complete event for the calling thread.  Thread-safe.
  void record(std::string name, std::int64_t ts_us, std::int64_t dur_us);

  /// Snapshot of every recorded event (completion order).
  [[nodiscard]] std::vector<TraceEvent> events() const;

  /// {"traceEvents":[{"name":...,"cat":"hpcfail","ph":"X","ts":N,
  ///  "dur":N,"pid":1,"tid":N},...]} — loads directly in chrome://tracing
  /// and in Perfetto.  Events sorted by (ts, tid) for stable output.
  [[nodiscard]] std::string to_chrome_json() const;

 private:
  std::int64_t epoch_ns_;
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> thread_ids_;  ///< hash -> dense id
};

/// Installs `recorder` as the process-wide span sink (nullptr disarms).
/// The caller keeps ownership and must keep it alive until after the last
/// live span on any thread has destructed (drain pools before uninstalling).
void install_trace(TraceRecorder* recorder) noexcept;

/// The installed recorder, or nullptr when tracing is dark.
[[nodiscard]] TraceRecorder* trace() noexcept;

/// Lowercases and maps every non-[a-z0-9] character of `raw` to '_', so a
/// runtime-provided label (analyzer name, file stem) can be embedded in a
/// span name without breaking the naming convention.
[[nodiscard]] std::string trace_name_segment(std::string_view raw);

/// RAII span: records [construction, destruction) against the recorder
/// installed at construction time.  Inert (and cheap) when none is.
class TraceSpan {
 public:
  explicit TraceSpan(std::string_view name) noexcept : recorder_(trace()) {
    if (recorder_ != nullptr) {
      name_ = name;
      start_us_ = recorder_->now_us();
    }
  }
  ~TraceSpan() {
    if (recorder_ != nullptr) {
      recorder_->record(std::move(name_), start_us_, recorder_->now_us() - start_us_);
    }
  }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  [[nodiscard]] bool active() const noexcept { return recorder_ != nullptr; }

 private:
  TraceRecorder* recorder_;
  std::string name_;
  std::int64_t start_us_ = 0;
};

}  // namespace hpcfail::util
