// Fig 19: MTBF of job-triggered failures on S3 over 7 weeks.  Paper: the
// MTBF never exceeds 32 minutes; W1 sees on average 91.6% of its failures
// within 5 minutes; W6/W7 see >90% within 29-32 minutes — much shorter than
// the >5 hours of prior LANL studies.  Nodes sharing an application fail at
// similar times even when spatially distant (Observation 8).
#include "bench_common.hpp"
#include "core/job_analysis.hpp"
#include "core/spatial.hpp"
#include "core/temporal.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 19: job-triggered failure MTBF (S3, 7 weeks)");

  const auto p = bench::run_system(platform::SystemName::S3, 49, 1919);
  const core::TemporalAnalyzer temporal(p.failures);
  const auto weeks = temporal.weekly_stats_filtered(
      p.sim.config.begin, 7, [](const core::AnalyzedFailure& f) {
        return f.event.job_id != logmodel::kNoJob && f.inference.application_triggered;
      });

  util::TextTable table(
      {"Week", "job-triggered failures", "<=5 min", "<=32 min", "burst MTBF (min)"});
  double best_within5 = 0.0;
  double worst_within32 = 1.0;
  stats::StreamingStats burst_mtbf_all;
  for (std::size_t w = 0; w < weeks.size(); ++w) {
    const auto& wk = weeks[w];
    stats::StreamingStats burst;
    for (const double g : wk.gap_ecdf.sorted_sample()) {
      if (g <= 120.0) burst.add(g);
    }
    table.row()
        .cell("W" + std::to_string(w + 1))
        .cell(static_cast<std::int64_t>(wk.failures))
        .pct(wk.fraction_within(5.0))
        .pct(wk.fraction_within(32.0))
        .cell(burst.mean(), 2);
    best_within5 = std::max(best_within5, wk.fraction_within(5.0));
    if (wk.failures >= 3) worst_within32 = std::min(worst_within32, wk.fraction_within(32.0));
    if (burst.count() > 0) burst_mtbf_all.add(burst.mean());
  }
  std::cout << table.render() << '\n';

  check.in_range("best week: fraction within 5 min (paper W1 91.6%)", best_within5, 0.55,
                 1.0);
  check.in_range("worst week: fraction within 32 min (paper >90%)", worst_within32, 0.40,
                 1.0);
  check.in_range("burst MTBF across weeks (paper <= 32 min)", burst_mtbf_all.max(), 0.0,
                 32.0);
  check.greater("far below prior work's >5 h MTBF", 300.0, burst_mtbf_all.max());

  // Spatially distant nodes with temporal locality under a shared job.
  const core::JobAnalyzer jobs(p.parsed.jobs, p.failures);
  check.in_range("failures in shared-job groups spanning multiple blades",
                 jobs.multi_blade_shared_job_fraction(), 0.30, 1.0);
  return check.exit_code();
}
