#include "core/analysis_context.hpp"

#include <stdexcept>

#include "logmodel/record.hpp"
#include "util/trace.hpp"

namespace hpcfail::core {

AnalysisContext::AnalysisContext(const logmodel::LogStore& store,
                                 const jobs::JobTable* jobs, util::TimePoint begin,
                                 util::TimePoint end,
                                 const DetectorConfig& detector_config,
                                 const RootCauseConfig& root_cause_config,
                                 util::ThreadPool* pool)
    : store_(store), jobs_(jobs), begin_(begin), end_(end) {
  if (!store.finalized()) {
    throw std::logic_error(
        "AnalysisContext: store must be finalized before analysis (call "
        "LogStore::finalize() after the last add())");
  }

  // One pass over the window for the type histogram; every analyzer that
  // previously counted its own types reads this instead.
  {
    util::TraceSpan span("hpcfail.context.type_histogram");
    for (const auto& r : store.range(begin_, end_)) {
      ++type_histogram_[static_cast<std::size_t>(r.type)];
    }
  }

  // Memoized detection + diagnosis.  Evidence collection per failure is
  // independent (immutable store/jobs/configs, disjoint output slots), so
  // it shards over the pool with index-ordered assembly: the result is
  // byte-identical to the serial loop.
  const FailureDetector detector(detector_config);
  const RootCauseEngine engine(root_cause_config);
  {
    util::TraceSpan span("hpcfail.context.detect");
    detection_ = detector.detect_full(store, jobs);
  }
  failures_.resize(detection_.failures.size());
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    failures_[i].event = detection_.failures[i];
  }
  {
    util::TraceSpan span("hpcfail.context.diagnose");
    if (pool != nullptr && failures_.size() > 1) {
      pool->parallel_for(failures_.size(), [&](std::size_t i) {
        failures_[i].inference = engine.diagnose(store, failures_[i].event, jobs);
      });
    } else {
      for (auto& f : failures_) {
        f.inference = engine.diagnose(store, f.event, jobs);
      }
    }
  }

  // Failure joins: per node and per attributed job, time-ordered because
  // the failure list itself is.
  util::TraceSpan span("hpcfail.context.joins");
  for (std::size_t i = 0; i < failures_.size(); ++i) {
    const auto& e = failures_[i].event;
    if (e.node.valid()) failures_by_node_[e.node.value].push_back(i);
    if (e.job_id != logmodel::kNoJob) failures_by_job_[e.job_id].push_back(i);
  }
}

const std::vector<std::size_t>* AnalysisContext::failures_on_node(
    platform::NodeId node) const noexcept {
  const auto it = failures_by_node_.find(node.value);
  return it == failures_by_node_.end() ? nullptr : &it->second;
}

const std::vector<std::size_t>* AnalysisContext::failures_of_job(
    std::int64_t job_id) const noexcept {
  if (job_id == logmodel::kNoJob) return nullptr;
  const auto it = failures_by_job_.find(job_id);
  return it == failures_by_job_.end() ? nullptr : &it->second;
}

}  // namespace hpcfail::core
