// Serve loops around Server::handle_line: a line-delimited stdio session
// (one JSON request per line in, one JSON response per line out), a local
// unix-socket listener for out-of-process clients, and the matching client
// that forwards its stdin — so a scripted CI session needs no tooling
// beyond hpcfail-serve itself.
//
// The stdio session optionally fans requests out over a ThreadPool while
// keeping responses in request order (futures retire FIFO); the socket
// listener stays serial — it is a local debugging/scripting surface, and
// one connection at a time keeps it honest about ordering.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "util/thread_pool.hpp"

namespace hpcfail::serve {

class Server;

struct SessionOptions {
  /// When set, request handling is submitted to the pool; responses still
  /// come back in request order.  Null handles requests inline.
  util::ThreadPool* pool = nullptr;
  /// Max requests in flight before the reader blocks on the oldest.
  std::size_t max_inflight = 64;
  /// Poll the server's attached tails before each request is dispatched —
  /// the daemon's deterministic, timer-free way of following a live log:
  /// a query always sees every line that landed before it was asked.
  bool poll_tail_each_request = false;
};

/// Reads request lines from `in` until EOF or a shutdown request was
/// answered; writes exactly one response line per request to `out`, in
/// request order.  Returns the number of requests answered.
std::size_t run_session(Server& server, std::istream& in, std::ostream& out,
                        const SessionOptions& options = {});

/// Binds a unix-domain socket at `path` (replacing a stale one), then
/// accepts one connection at a time and answers its request lines until
/// the peer disconnects; returns once a shutdown request was answered (or
/// on listener error, with a message on stderr).  Returns true on clean
/// shutdown.  Only `poll_tail_each_request` is honored from the options —
/// socket handling is serial by design.
bool run_socket_server(Server& server, const std::string& path,
                       const SessionOptions& options = {});

/// Connects to the unix-domain socket at `path`, forwards each line of
/// `in` as a request and prints each response line to `out`.  Returns
/// false if the connection fails or drops mid-session.
bool run_socket_client(const std::string& path, std::istream& in, std::ostream& out);

}  // namespace hpcfail::serve
