// Unit and property tests for src/platform: cname grammar, topology maps,
// Table I presets.
#include <gtest/gtest.h>

#include "platform/cname.hpp"
#include "platform/system_config.hpp"
#include "platform/topology.hpp"

namespace hpcfail::platform {
namespace {

// -------------------------------------------------------------- cname ----

TEST(CnameTest, FormatLevels) {
  Cname c{12, 3, 2, 7, 3};
  EXPECT_EQ(c.to_string(), "c12-3c2s7n3");
  EXPECT_EQ(c.truncated(CnameLevel::Blade).to_string(), "c12-3c2s7");
  EXPECT_EQ(c.truncated(CnameLevel::Chassis).to_string(), "c12-3c2");
  EXPECT_EQ(c.truncated(CnameLevel::Cabinet).to_string(), "c12-3");
}

TEST(CnameTest, ParseLevels) {
  const auto node = parse_cname("c1-0c2s15n3");
  ASSERT_TRUE(node.has_value());
  EXPECT_EQ(node->level(), CnameLevel::Node);
  EXPECT_EQ(node->slot, 15);
  const auto blade = parse_cname("c1-0c2s15");
  ASSERT_TRUE(blade.has_value());
  EXPECT_EQ(blade->level(), CnameLevel::Blade);
  const auto cabinet = parse_cname("c1-0");
  ASSERT_TRUE(cabinet.has_value());
  EXPECT_EQ(cabinet->level(), CnameLevel::Cabinet);
}

TEST(CnameTest, RejectsMalformed) {
  for (const char* bad : {"", "c", "c1", "c1-", "x1-0", "c1-0c", "c1-0c2s", "c1-0c2s7n",
                          "c1-0c2s7n3x", "c1-0c2s7nn3", "c-1-0", "c1_0"}) {
    EXPECT_FALSE(parse_cname(bad).has_value()) << bad;
  }
}

TEST(CnameTest, NidRoundTrip) {
  EXPECT_EQ(format_nid(42), "nid00042");
  EXPECT_EQ(parse_nid("nid00042"), 42u);
  EXPECT_EQ(parse_nid("nid123456"), 123456u);
  EXPECT_FALSE(parse_nid("nid").has_value());
  EXPECT_FALSE(parse_nid("nidxyz").has_value());
  EXPECT_FALSE(parse_nid("node0042").has_value());
}

TEST(CnameTest, HostnameRoundTrip) {
  EXPECT_EQ(format_hostname(7), "node0007");
  EXPECT_EQ(parse_hostname("node0007"), 7u);
  EXPECT_FALSE(parse_hostname("nid00007").has_value());
}

// ------------------------------------------------------------ topology ----

TEST(TopologyTest, FullCabinetCounts) {
  TopologyConfig cfg;  // 1 cabinet, 3 chassis, 16 slots, 4 nodes
  const Topology topo(cfg);
  EXPECT_EQ(topo.node_count(), 192u);
  EXPECT_EQ(topo.blade_count(), 48u);
  EXPECT_EQ(topo.chassis_count(), 3u);
  EXPECT_EQ(topo.cabinet_count(), 1u);
}

TEST(TopologyTest, PartialMachineClipsBlades) {
  TopologyConfig cfg;
  cfg.max_nodes = 10;  // 2.5 blades
  const Topology topo(cfg);
  EXPECT_EQ(topo.node_count(), 10u);
  EXPECT_EQ(topo.blade_count(), 3u);
  EXPECT_EQ(topo.nodes_on_blade(BladeId{2}).size(), 2u);
  EXPECT_EQ(topo.nodes_on_blade(BladeId{3}).size(), 0u);
}

TEST(TopologyTest, BladeAndCabinetOfNode) {
  TopologyConfig cfg;
  cfg.cabinet_cols = 2;
  cfg.cabinet_rows = 2;
  const Topology topo(cfg);
  // Node 0 is blade 0, cabinet 0; node 191 is the last of cabinet 0.
  EXPECT_EQ(topo.blade_of(NodeId{0}).value, 0u);
  EXPECT_EQ(topo.cabinet_of(NodeId{191}).value, 0u);
  EXPECT_EQ(topo.cabinet_of(NodeId{192}).value, 1u);
  EXPECT_EQ(topo.blade_of(NodeId{193}).value, 48u);
}

class CnameNodeRoundTrip : public ::testing::TestWithParam<SystemName> {};

TEST_P(CnameNodeRoundTrip, EveryNodeRoundTrips) {
  const SystemConfig sys = system_preset(GetParam());
  const Topology topo(sys.topology);
  // Stride through the machine to keep runtime low while covering the full
  // id range including the partial tail.
  for (std::uint32_t n = 0; n < topo.node_count(); n += 97) {
    const NodeId node{n};
    const Cname cname = topo.cname_of(node);
    const auto back = topo.node_from_cname(cname);
    ASSERT_TRUE(back.has_value()) << cname.to_string();
    EXPECT_EQ(back->value, n);
    // String round trip too.
    const auto parsed = parse_cname(cname.to_string());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, cname);
    // Node-name round trip.
    EXPECT_EQ(topo.node_from_name(topo.node_name(node)), node);
  }
  // Last node exactly.
  const NodeId last{topo.node_count() - 1};
  EXPECT_EQ(topo.node_from_cname(topo.cname_of(last)), last);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, CnameNodeRoundTrip,
                         ::testing::Values(SystemName::S1, SystemName::S2, SystemName::S3,
                                           SystemName::S4, SystemName::S5));

TEST(TopologyTest, BladeCnameRoundTrip) {
  const Topology topo(system_preset(SystemName::S3).topology);
  for (std::uint32_t b = 0; b < topo.blade_count(); b += 13) {
    const BladeId blade{b};
    const auto back = topo.blade_from_cname(topo.cname_of_blade(blade));
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(back->value, b);
  }
}

TEST(TopologyTest, OutOfRangeRejected) {
  const Topology topo(TopologyConfig{});
  EXPECT_FALSE(topo.node_from_cname(Cname{5, 0, 0, 0, 0}).has_value());
  EXPECT_FALSE(topo.node_from_cname(Cname{0, 0, 3, 0, 0}).has_value());
  EXPECT_FALSE(topo.node_from_cname(Cname{0, 0, 0, 16, 0}).has_value());
  EXPECT_FALSE(topo.node_from_cname(Cname{0, 0, 0, 0, 4}).has_value());
  EXPECT_FALSE(topo.node_from_name("nid99999").has_value());
  EXPECT_EQ(topo.blade_of(NodeId{}).valid(), false);
}

TEST(TopologyTest, CabinetDistance) {
  TopologyConfig cfg;
  cfg.cabinet_cols = 3;
  cfg.cabinet_rows = 2;
  const Topology topo(cfg);
  const std::uint32_t per_cab = 192;
  EXPECT_EQ(topo.cabinet_distance(NodeId{0}, NodeId{0}), 0);
  EXPECT_EQ(topo.cabinet_distance(NodeId{0}, NodeId{per_cab * 2}), 2);     // c2-0
  EXPECT_EQ(topo.cabinet_distance(NodeId{0}, NodeId{per_cab * 5}), 3);     // c2-1
}

TEST(TopologyTest, InvalidConfigThrows) {
  TopologyConfig cfg;
  cfg.nodes_per_slot = 0;
  EXPECT_THROW(Topology{cfg}, std::invalid_argument);
}

// -------------------------------------------------------------- presets ----

TEST(PresetTest, TableOneFacts) {
  const auto all = all_system_presets();
  ASSERT_EQ(all.size(), 5u);
  EXPECT_EQ(all[0].nodes, 5600u);
  EXPECT_EQ(all[1].interconnect, InterconnectKind::GeminiTorus);
  EXPECT_EQ(all[1].scheduler, SchedulerKind::Torque);
  EXPECT_EQ(all[2].has_burst_buffer, true);
  EXPECT_EQ(all[4].filesystem, FileSystemKind::LocalFs);
  EXPECT_EQ(all[4].topology.naming, NamingScheme::Hostname);
  for (const auto& sys : all) {
    EXPECT_EQ(Topology(sys.topology).node_count(), sys.nodes) << sys.label;
  }
}

}  // namespace
}  // namespace hpcfail::platform
