file(REMOVE_RECURSE
  "libhpcfail_loggen.a"
)
