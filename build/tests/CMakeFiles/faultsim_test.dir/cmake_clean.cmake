file(REMOVE_RECURSE
  "CMakeFiles/faultsim_test.dir/faultsim_test.cpp.o"
  "CMakeFiles/faultsim_test.dir/faultsim_test.cpp.o.d"
  "faultsim_test"
  "faultsim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/faultsim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
