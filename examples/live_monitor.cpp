// Live monitoring: replay a corpus through the streaming OnlineMonitor as
// if the logs were arriving in real time, print alerts as they fire, and
// close with the mitigation advisor's fleet summary — the deployment story
// the paper's Table VI recommendations describe.
//
//   ./examples/live_monitor [days] [seed]
#include <cstdlib>
#include <iostream>

#include "core/analysis_context.hpp"
#include "core/advisor.hpp"
#include "core/online_monitor.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace hpcfail;
  const int days = argc > 1 ? std::atoi(argv[1]) : 2;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 21;

  const auto sim = faultsim::Simulator(
                       faultsim::scenario_preset(platform::SystemName::S1, days, seed))
                       .run();
  const auto corpus = loggen::build_corpus(sim);
  const auto parsed = parsers::parse_corpus(corpus);

  std::cout << "replaying " << parsed.store.size() << " records (" << days
            << " days of S1)...\n\n";

  core::OnlineMonitor monitor;
  std::size_t shown = 0;
  std::array<std::size_t, 4> kind_counts{};
  for (const auto& record : parsed.store.records()) {
    for (const auto& alert : monitor.ingest(record, parsed.store.detail(record))) {
      ++kind_counts[static_cast<std::size_t>(alert.kind)];
      if (shown < 40) {
        std::cout << util::format_iso(alert.time) << "  "
                  << parsed.topology.node_name(alert.node) << "  "
                  << to_string(alert.kind);
        if (alert.suspected != logmodel::RootCause::Unknown) {
          std::cout << " [" << to_string(alert.suspected) << "]";
        }
        std::cout << "  " << alert.message << '\n';
        ++shown;
      }
    }
  }
  std::cout << "\nalert totals: ";
  for (std::size_t k = 0; k < kind_counts.size(); ++k) {
    std::cout << to_string(static_cast<core::AlertKind>(k)) << "=" << kind_counts[k] << ' ';
  }
  std::cout << "\n\n";

  // Post-hoc: what should the operator do about each confirmed failure?
  const core::AnalysisContext analysis_ctx(
      parsed.store, &parsed.jobs, parsed.store.first_time(),
      parsed.store.last_time() + util::Duration::microseconds(1));
  const auto& failures = analysis_ctx.failures();
  const core::MitigationAdvisor advisor;
  const auto recommendations = advisor.advise(failures, &parsed.jobs);
  const auto summary = core::summarize_actions(recommendations, failures);

  util::TextTable table({"recommended action", "failures"});
  for (std::size_t a = 0; a < summary.counts.size(); ++a) {
    if (summary.counts[a] == 0) continue;
    table.row()
        .cell(std::string(to_string(static_cast<core::Action>(a))))
        .cell(static_cast<std::int64_t>(summary.counts[a]));
  }
  std::cout << table.render();
  std::cout << "\nquarantining by default would have wasted nodes on "
            << util::fmt_pct(summary.quarantine_waste_fraction)
            << " of failures (application-triggered; Observation 6).\n";
  return 0;
}
