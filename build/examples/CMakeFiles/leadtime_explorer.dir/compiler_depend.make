# Empty compiler generated dependencies file for leadtime_explorer.
# This may be replaced when dependencies are built.
