file(REMOVE_RECURSE
  "CMakeFiles/tab02_log_sources.dir/tab02_log_sources.cpp.o"
  "CMakeFiles/tab02_log_sources.dir/tab02_log_sources.cpp.o.d"
  "tab02_log_sources"
  "tab02_log_sources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab02_log_sources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
