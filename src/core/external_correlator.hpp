// External-influence correlation (Section III-B, Figs 5-7): how often do
// node heartbeat faults (NHF) and node voltage faults (NVF) actually
// correspond to node failures, and what do the non-failing NHFs look like?
#pragma once

#include <vector>

#include "core/root_cause.hpp"
#include "logmodel/log_store.hpp"

namespace hpcfail::core {

struct CorrelatorConfig {
  /// An external fault corresponds to a failure on the same node within
  /// +/- this window (heartbeat faults typically trail the death by a
  /// minute or two; voltage faults can lead it).
  util::Duration match_window = util::Duration::minutes(30);
};

struct FaultCorrespondence {
  std::size_t faults = 0;          ///< external fault events observed
  std::size_t matched = 0;         ///< ... that correspond to a failure
  [[nodiscard]] double fraction() const noexcept {
    return faults ? static_cast<double>(matched) / static_cast<double>(faults) : 0.0;
  }
};

/// Fig 6's finer NHF breakdown.
struct NhfBreakdown {
  std::size_t total = 0;
  std::size_t failed = 0;              ///< NHF matched a failure
  std::size_t failed_mce = 0;          ///< ... whose cause was hardware MCE
  std::size_t power_off = 0;           ///< non-failing: node powered off
  std::size_t skipped_heartbeat = 0;   ///< non-failing: skipped heartbeat
  std::size_t other_benign = 0;        ///< non-failing, unattributed
};

class ExternalCorrelator {
 public:
  /// Keeps references to `store` and `failures`; the store must be
  /// finalized (throws std::logic_error otherwise — fail loud at
  /// construction, not on the first query against stale indexes).
  ExternalCorrelator(const logmodel::LogStore& store,
                     const std::vector<AnalyzedFailure>& failures,
                     CorrelatorConfig config = {});

  /// Correspondence of a node-scoped external fault type with failures over
  /// [begin, end) (Fig 5, computed per month/week by the benches).
  [[nodiscard]] FaultCorrespondence correspondence(logmodel::EventType fault_type,
                                                   util::TimePoint begin,
                                                   util::TimePoint end) const;

  [[nodiscard]] NhfBreakdown nhf_breakdown(util::TimePoint begin, util::TimePoint end) const;

 private:
  /// The failure matching (node, time window), or nullptr.
  [[nodiscard]] const AnalyzedFailure* match_failure(platform::NodeId node,
                                                     util::TimePoint t) const;

  const logmodel::LogStore& store_;
  const std::vector<AnalyzedFailure>& failures_;
  CorrelatorConfig config_;
  /// Failure list indexes per node, time-ordered.
  std::unordered_map<std::uint32_t, std::vector<std::size_t>> failures_by_node_;
};

}  // namespace hpcfail::core
