// Ablation: failure-detector parameters vs ground truth.
//
// Sweeps the marker dedup window (too small double-counts panic+shutdown
// clusters; too large merges distinct failures) and validates the SWO
// exclusion (without it a single outage would swamp the statistics).
#include "bench_common.hpp"
#include "core/failure_detector.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Ablation: detector windows vs ground truth");

  faultsim::ScenarioConfig scenario =
      faultsim::scenario_preset(platform::SystemName::S1, 14, 555);
  scenario.benign.swo_per_month = 4.0;  // make SWOs likely in-window
  const auto sim = faultsim::Simulator(scenario).run();
  const auto corpus = loggen::build_corpus(sim);
  const auto parsed = parsers::parse_corpus(corpus);

  auto score = [&](const core::DetectorConfig& cfg) {
    const auto detection = core::FailureDetector(cfg).detect_full(parsed.store, &parsed.jobs);
    std::size_t matched = 0;
    std::vector<bool> used(detection.failures.size(), false);
    for (const auto& truth : sim.truth.failures) {
      for (std::size_t i = 0; i < detection.failures.size(); ++i) {
        if (used[i]) continue;
        const auto& f = detection.failures[i];
        if (f.node != truth.node) continue;
        if (std::abs((f.time - truth.fail_time).usec) > util::Duration::minutes(5).usec)
          continue;
        used[i] = true;
        ++matched;
        break;
      }
    }
    struct Result {
      double recall, precision;
      std::size_t detected, swos;
    };
    const double planted = static_cast<double>(sim.truth.failures.size());
    const double detected = static_cast<double>(detection.failures.size());
    return Result{planted > 0 ? matched / planted : 0.0,
                  detected > 0 ? matched / detected : 0.0, detection.failures.size(),
                  detection.swos.size()};
  };

  util::TextTable table({"dedup window (min)", "detected", "recall", "precision", "SWOs"});
  double default_recall = 0.0, default_precision = 0.0;
  double tiny_precision = 1.0;
  for (const int dedup_min : {0, 1, 10, 60}) {
    core::DetectorConfig cfg;
    cfg.dedup_window = util::Duration::minutes(std::max(dedup_min, 0));
    if (dedup_min == 0) cfg.dedup_window = util::Duration::seconds(1);
    const auto r = score(cfg);
    table.row()
        .cell(static_cast<std::int64_t>(dedup_min))
        .cell(static_cast<std::int64_t>(r.detected))
        .pct(r.recall)
        .pct(r.precision)
        .cell(static_cast<std::int64_t>(r.swos));
    if (dedup_min == 10) {
      default_recall = r.recall;
      default_precision = r.precision;
    }
    if (dedup_min == 0) tiny_precision = r.precision;
  }
  std::cout << table.render() << '\n';

  check.in_range("default dedup: recall", default_recall, 0.95, 1.0);
  check.in_range("default dedup: precision", default_precision, 0.90, 1.0);
  check.greater("tiny dedup double-counts (worse precision)", default_precision,
                tiny_precision);

  // SWO exclusion ablation: disabling it floods the statistics.
  core::DetectorConfig no_swo;
  no_swo.swo_min_nodes = 1000000;  // effectively off
  const auto with_swo = core::FailureDetector().detect_full(parsed.store, &parsed.jobs);
  const auto without = core::FailureDetector(no_swo).detect_full(parsed.store, &parsed.jobs);
  std::cout << "with SWO exclusion: " << with_swo.failures.size() << " failures, "
            << with_swo.swos.size() << " SWOs; without: " << without.failures.size()
            << " failures\n";
  if (!with_swo.swos.empty()) {
    check.greater("without SWO exclusion the failure count explodes",
                  static_cast<double>(without.failures.size()),
                  static_cast<double>(with_swo.failures.size()) * 3.0);
  }
  check.in_range("intended shutdowns excluded",
                 static_cast<double>(with_swo.intended_shutdowns_excluded),
                 static_cast<double>(sim.truth.benign.intended_shutdown_nodes),
                 static_cast<double>(sim.truth.benign.intended_shutdown_nodes));
  return check.exit_code();
}
