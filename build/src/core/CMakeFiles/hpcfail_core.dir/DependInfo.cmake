
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/advisor.cpp" "src/core/CMakeFiles/hpcfail_core.dir/advisor.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/advisor.cpp.o.d"
  "/root/repo/src/core/benign_faults.cpp" "src/core/CMakeFiles/hpcfail_core.dir/benign_faults.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/benign_faults.cpp.o.d"
  "/root/repo/src/core/clusters.cpp" "src/core/CMakeFiles/hpcfail_core.dir/clusters.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/clusters.cpp.o.d"
  "/root/repo/src/core/external_correlator.cpp" "src/core/CMakeFiles/hpcfail_core.dir/external_correlator.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/external_correlator.cpp.o.d"
  "/root/repo/src/core/failure_detector.cpp" "src/core/CMakeFiles/hpcfail_core.dir/failure_detector.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/failure_detector.cpp.o.d"
  "/root/repo/src/core/job_analysis.cpp" "src/core/CMakeFiles/hpcfail_core.dir/job_analysis.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/job_analysis.cpp.o.d"
  "/root/repo/src/core/leadtime.cpp" "src/core/CMakeFiles/hpcfail_core.dir/leadtime.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/leadtime.cpp.o.d"
  "/root/repo/src/core/markdown_report.cpp" "src/core/CMakeFiles/hpcfail_core.dir/markdown_report.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/markdown_report.cpp.o.d"
  "/root/repo/src/core/online_monitor.cpp" "src/core/CMakeFiles/hpcfail_core.dir/online_monitor.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/online_monitor.cpp.o.d"
  "/root/repo/src/core/prediction.cpp" "src/core/CMakeFiles/hpcfail_core.dir/prediction.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/prediction.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/core/CMakeFiles/hpcfail_core.dir/report.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/report.cpp.o.d"
  "/root/repo/src/core/root_cause.cpp" "src/core/CMakeFiles/hpcfail_core.dir/root_cause.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/root_cause.cpp.o.d"
  "/root/repo/src/core/spatial.cpp" "src/core/CMakeFiles/hpcfail_core.dir/spatial.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/spatial.cpp.o.d"
  "/root/repo/src/core/temporal.cpp" "src/core/CMakeFiles/hpcfail_core.dir/temporal.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/temporal.cpp.o.d"
  "/root/repo/src/core/timeline.cpp" "src/core/CMakeFiles/hpcfail_core.dir/timeline.cpp.o" "gcc" "src/core/CMakeFiles/hpcfail_core.dir/timeline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/jobs/CMakeFiles/hpcfail_jobs.dir/DependInfo.cmake"
  "/root/repo/build/src/logmodel/CMakeFiles/hpcfail_logmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/platform/CMakeFiles/hpcfail_platform.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/hpcfail_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hpcfail_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
