// Fixture: a figure bench that hand-wires the analysis instead of going
// through the shared bench pipeline facade.
#include "core/root_cause.hpp"

int main() {
  const auto parsed = make_parsed();
  const auto failures = hpcfail::core::analyze_failures(parsed.store, &parsed.jobs);
  return failures.empty() ? 1 : 0;
}
