file(REMOVE_RECURSE
  "libhpcfail_sensors.a"
)
