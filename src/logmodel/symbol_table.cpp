#include "logmodel/symbol_table.hpp"

#include <algorithm>
#include <cstring>
#include <new>

#include "util/fault.hpp"

namespace hpcfail::logmodel {

SymbolTable::SymbolTable() : slots_(64, 0) { intern({}); }

SymbolTable::SymbolTable(const SymbolTable& other) : SymbolTable() {
  for (std::size_t i = 1; i < other.views_.size(); ++i) {
    intern_hashed(other.views_[i], other.hashes_[i]);
  }
}

SymbolTable& SymbolTable::operator=(const SymbolTable& other) {
  if (this != &other) {
    SymbolTable copy(other);
    *this = std::move(copy);
  }
  return *this;
}

const char* SymbolTable::arena_store(std::string_view text) {
  if (blocks_.empty() || block_used_ + text.size() > kBlockBytes) {
    blocks_.push_back(std::make_unique<char[]>(std::max(text.size(), kBlockBytes)));
    block_used_ = 0;
  }
  char* dst = blocks_.back().get() + block_used_;
  std::memcpy(dst, text.data(), text.size());
  block_used_ += text.size();
  return dst;
}

std::uint64_t SymbolTable::hash_bytes(std::string_view text) noexcept {
  // xor-multiply over unaligned 8-byte loads with a zero-padded tail; the
  // length is folded into the seed so "a" and "a\0..." prefixes cannot
  // collide trivially.
  constexpr std::uint64_t kMul = 0x9DDFEA08EB382D69ull;
  std::uint64_t h =
      0x84222325CBF29CE4ull ^ (static_cast<std::uint64_t>(text.size()) * kMul);
  const char* p = text.data();
  std::size_t n = text.size();
  for (; n >= 8; p += 8, n -= 8) {
    std::uint64_t v;
    std::memcpy(&v, p, 8);
    h = (h ^ v) * kMul;
    h ^= h >> 47;
  }
  if (n != 0) {
    std::uint64_t v = 0;
    std::memcpy(&v, p, n);
    h = (h ^ v) * kMul;
    h ^= h >> 47;
  }
  return h;
}

void SymbolTable::grow_slots() {
  std::vector<std::uint32_t> bigger(slots_.size() * 2, 0);
  const std::size_t mask = bigger.size() - 1;
  for (std::uint32_t id = 0; id < views_.size(); ++id) {
    std::size_t b = hashes_[id] & mask;
    while (bigger[b] != 0) b = (b + 1) & mask;
    bigger[b] = id + 1;
  }
  slots_ = std::move(bigger);
}

Symbol SymbolTable::intern_hashed(std::string_view text, std::uint64_t hash) {
  const std::size_t mask = slots_.size() - 1;
  std::size_t b = hash & mask;
  while (slots_[b] != 0) {
    const std::uint32_t id = slots_[b] - 1;
    if (hashes_[id] == hash && views_[id] == text) return Symbol{id};
    b = (b + 1) & mask;
  }
  const std::string_view stable =
      text.empty() ? std::string_view{}
                   : std::string_view(arena_store(text), text.size());
  const auto id = static_cast<std::uint32_t>(views_.size());
  views_.push_back(stable);
  hashes_.push_back(hash);
  payload_bytes_ += text.size();
  slots_[b] = id + 1;
  // Keep load factor under 3/4 so probe chains stay short.
  if ((views_.size() + 1) * 4 > slots_.size() * 3) grow_slots();
  return Symbol{id};
}

Symbol SymbolTable::intern(std::string_view text) {
  return intern_hashed(text, hash_bytes(text));
}

std::vector<Symbol> SymbolTable::absorb(const SymbolTable& src) {
  if (HPCFAIL_FAULT_SITE("store.symbol_absorb.bad_alloc")) throw std::bad_alloc{};
  // The chunk-local table already hashed every string; probing with the
  // stored hash makes absorb a memcmp-verified table probe per distinct
  // string with no rehashing at all.
  std::vector<Symbol> remap(src.views_.size());
  for (std::size_t i = 0; i < src.views_.size(); ++i) {
    remap[i] = intern_hashed(src.views_[i], src.hashes_[i]);
  }
  return remap;
}

void SymbolTable::append_sections(util::Sections& out, const std::string& prefix) const {
  // The arena is block-structured in memory; the serialized form is one
  // flat run (every payload concatenated in id order) plus uint64 fence
  // offsets, so the load side never learns about blocks.
  std::vector<std::byte> bytes;
  bytes.reserve(payload_bytes_);
  std::vector<std::uint64_t> offsets;
  offsets.reserve(views_.size() + 1);
  offsets.push_back(0);
  for (const std::string_view v : views_) {
    const auto* data = reinterpret_cast<const std::byte*>(v.data());
    bytes.insert(bytes.end(), data, data + v.size());
    offsets.push_back(bytes.size());
  }
  out.add_owned(prefix + ".bytes", std::move(bytes));
  std::vector<std::byte> offset_bytes(offsets.size() * sizeof(std::uint64_t));
  std::memcpy(offset_bytes.data(), offsets.data(), offset_bytes.size());
  out.add_owned(prefix + ".offsets", std::move(offset_bytes));
}

SymbolTable SymbolTable::from_sections(const util::SectionMap& in,
                                       const std::string& prefix) {
  const auto offsets = in.vector_of<std::uint64_t>(prefix + ".offsets");
  const auto bytes = in.require(prefix + ".bytes");
  if (offsets.empty() || offsets.front() != 0 || offsets.back() != bytes.size()) {
    throw util::SectionError(prefix + ".offsets",
                             "offsets do not span the string payload exactly");
  }
  SymbolTable table;  // already holds "" as id 0
  for (std::size_t i = 0; i + 1 < offsets.size(); ++i) {
    if (offsets[i + 1] < offsets[i]) {
      throw util::SectionError(prefix + ".offsets",
                               "offsets decrease at id " + std::to_string(i));
    }
    const std::string_view text(
        reinterpret_cast<const char*>(bytes.data()) + offsets[i],
        static_cast<std::size_t>(offsets[i + 1] - offsets[i]));
    if (i == 0) {
      if (!text.empty()) {
        throw util::SectionError(prefix + ".bytes", "id 0 must be the empty string");
      }
      continue;  // the constructor interned it
    }
    const Symbol sym = table.intern(text);
    if (sym.id != i) {
      throw util::SectionError(
          prefix + ".bytes", "duplicate string at id " + std::to_string(i) +
                                 " (would re-intern as id " + std::to_string(sym.id) + ")");
    }
  }
  return table;
}

}  // namespace hpcfail::logmodel
