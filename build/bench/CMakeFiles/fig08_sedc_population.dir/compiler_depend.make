# Empty compiler generated dependencies file for fig08_sedc_population.
# This may be replaced when dependencies are built.
