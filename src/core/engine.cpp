#include "core/engine.hpp"

#include "parsers/corpus_parser.hpp"
#include "util/trace.hpp"

namespace hpcfail::core {

AnalysisEngine::AnalysisEngine(AnalysisConfig config) : config_(std::move(config)) {
  // Built-in analyzers, in dependency order: aggregates/lead-times/external
  // read only context state; clusters read the failures already copied into
  // the result.  Extension stages registered later see everything below.
  analyzers_.emplace_back(
      "cause-aggregates", [](const AnalysisContext& ctx, AnalysisResult& out) {
        out.breakdown = cause_breakdown(ctx.failures());
        out.layers = layer_shares(ctx.failures());
        out.module_usage = stack_module_usage(ctx.failures());
      });
  analyzers_.emplace_back(
      "lead-times", [this](const AnalysisContext& ctx, AnalysisResult& out) {
        const LeadTimeAnalyzer analyzer(ctx.store(), config_.lead_time);
        out.lead_times = analyzer.lead_times(ctx.failures(), config_.pool);
        out.lead_time_summary = LeadTimeAnalyzer::summarize_lead_times(out.lead_times);
      });
  analyzers_.emplace_back(
      "external-correlation", [this](const AnalysisContext& ctx, AnalysisResult& out) {
        const ExternalCorrelator correlator(ctx.store(), ctx.failures(),
                                            config_.correlator);
        out.nvf = correlator.correspondence(logmodel::EventType::NodeVoltageFault,
                                            ctx.begin(), ctx.end());
        out.nhf = correlator.correspondence(logmodel::EventType::NodeHeartbeatFault,
                                            ctx.begin(), ctx.end());
        out.nhf_breakdown = correlator.nhf_breakdown(ctx.begin(), ctx.end());
      });
  analyzers_.emplace_back(
      "benign-faults", [](const AnalysisContext& ctx, AnalysisResult& out) {
        const BenignFaultAnalyzer benign(ctx.store());
        out.sedc = benign.sedc_population(ctx.begin(), ctx.end());
        out.interconnect =
            benign.interconnect_summary(ctx.begin(), ctx.end(), ctx.failures());
      });
  analyzers_.emplace_back(
      "clusters", [this](const AnalysisContext& ctx, AnalysisResult& out) {
        out.clusters = cluster_failures(ctx.failures(), config_.cluster_gap);
        out.cluster_summary = summarize_clusters(out.clusters);
      });
}

void AnalysisEngine::register_analyzer(std::string name, Analyzer fn) {
  analyzers_.emplace_back(std::move(name), std::move(fn));
}

std::vector<std::string> AnalysisEngine::analyzer_names() const {
  std::vector<std::string> out;
  out.reserve(analyzers_.size());
  for (const auto& [name, fn] : analyzers_) out.push_back(name);
  return out;
}

AnalysisResult AnalysisEngine::analyze(const logmodel::LogStore& store,
                                       const jobs::JobTable* jobs,
                                       util::TimePoint begin, util::TimePoint end) const {
  util::TraceSpan run_span("hpcfail.engine.run");
  const AnalysisContext ctx(store, jobs, begin, end, config_.detector,
                            config_.root_cause, config_.pool);
  AnalysisResult out;
  out.begin = begin;
  out.end = end;
  out.failures = ctx.failures();
  out.swos = ctx.detection().swos;
  out.intended_shutdowns_excluded = ctx.detection().intended_shutdowns_excluded;
  for (const auto& [name, fn] : analyzers_) {
    util::TraceSpan span("hpcfail.engine.analyzer_" + util::trace_name_segment(name));
    fn(ctx, out);
  }
  return out;
}

AnalysisResult AnalysisEngine::analyze(const parsers::ParsedCorpus& parsed) const {
  // Full extent of the corpus: [first, last] inclusive, so the window end
  // sits one tick past the last record ([begin, end) semantics everywhere).
  const auto& store = parsed.store;
  const util::TimePoint begin = store.first_time();
  const util::TimePoint end =
      store.size() ? store.last_time() + util::Duration::microseconds(1)
                   : store.first_time();
  return analyze(store, &parsed.jobs, begin, end);
}

}  // namespace hpcfail::core
