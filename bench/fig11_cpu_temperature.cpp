// Fig 11: mean CPU temperature of 2 nodes per blade across 16 blades of one
// chassis on a day with one failure.  Paper: all powered blades sit at a
// steady ~40 C; one turned-off node reads 0 C; the temperature profile does
// not aid root-cause analysis (Observation 3).
#include <map>

#include "bench_common.hpp"
#include "stats/summary.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 11: chassis CPU temperatures (16 blades, 1 day)");

  faultsim::ScenarioConfig scenario =
      faultsim::scenario_preset(platform::SystemName::S1, 1, 1111);
  scenario.sensors.emit_readings = true;
  scenario.sensors.reading_blade_count = 16;
  scenario.sensors.reading_interval_minutes = 10.0;
  // Node 0 of blade B2 is powered off (the 0-degree trace of the figure).
  scenario.sensors.force_power_off_node = 4;
  const auto p = bench::run_pipeline(scenario);

  // Mean reading per node, first two nodes of each of the 16 blades.
  std::map<std::uint32_t, stats::StreamingStats> node_temps;
  for (const std::uint32_t idx : p.parsed.store.type_index(logmodel::EventType::SedcReading)) {
    const auto& r = p.parsed.store[idx];
    if (!r.has_node()) continue;
    node_temps[r.node.value].add(r.value);
  }

  util::TextTable table({"Blade", "Node0 mean C", "Node0 std", "Node1 mean C", "Node1 std"});
  stats::StreamingStats powered_means;
  double off_mean = -1.0;
  for (std::uint32_t blade = 0; blade < 16; ++blade) {
    const std::uint32_t n0 = blade * 4;
    const std::uint32_t n1 = blade * 4 + 1;
    const auto& t0 = node_temps[n0];
    const auto& t1 = node_temps[n1];
    table.row()
        .cell("B" + std::to_string(blade + 1))
        .cell(t0.mean(), 1)
        .cell(t0.stddev(), 2)
        .cell(t1.mean(), 1)
        .cell(t1.stddev(), 2);
    for (const auto* t : {&t0, &t1}) {
      if (t->count() == 0) continue;
      if (t->mean() < 1.0) {
        off_mean = t->mean();
      } else {
        powered_means.add(t->mean());
      }
    }
  }
  std::cout << table.render() << '\n';

  check.in_range("powered nodes steady near 40 C (min of means)", powered_means.min(), 35.0,
                 45.0);
  check.in_range("powered nodes steady near 40 C (max of means)", powered_means.max(), 35.0,
                 45.0);
  check.in_range("across-node spread of means (steady)", powered_means.stddev(), 0.0, 3.0);
  check.in_range("turned-off node reads 0 C", off_mean, 0.0, 0.001);
  return check.exit_code();
}
