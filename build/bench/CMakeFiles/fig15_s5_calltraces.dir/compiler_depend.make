# Empty compiler generated dependencies file for fig15_s5_calltraces.
# This may be replaced when dependencies are built.
