#include "core/clusters.hpp"

#include <array>
#include <set>

namespace hpcfail::core {

std::vector<FailureCluster> cluster_failures(const std::vector<AnalyzedFailure>& failures,
                                             util::Duration max_gap) {
  std::vector<FailureCluster> out;
  std::size_t i = 0;
  while (i < failures.size()) {
    std::size_t j = i;
    while (j + 1 < failures.size() &&
           failures[j + 1].event.time - failures[j].event.time <= max_gap) {
      ++j;
    }

    FailureCluster cluster;
    cluster.first_index = i;
    cluster.size = j - i + 1;
    cluster.begin = failures[i].event.time;
    cluster.end = failures[j].event.time;

    std::set<std::uint32_t> nodes, blades, cabinets;
    std::array<std::size_t, logmodel::kRootCauseCount> causes{};
    std::set<std::int64_t> jobs;
    bool any_unattributed = false;
    for (std::size_t k = i; k <= j; ++k) {
      const auto& f = failures[k];
      nodes.insert(f.event.node.value);
      if (f.event.blade.valid()) blades.insert(f.event.blade.value);
      if (f.event.cabinet.valid()) cabinets.insert(f.event.cabinet.value);
      ++causes[static_cast<std::size_t>(f.inference.cause)];
      if (f.event.job_id == logmodel::kNoJob) {
        any_unattributed = true;
      } else {
        jobs.insert(f.event.job_id);
      }
    }
    cluster.distinct_nodes = nodes.size();
    cluster.distinct_blades = blades.size();
    cluster.distinct_cabinets = cabinets.size();
    for (std::size_t c = 0; c < causes.size(); ++c) {
      if (causes[c] > cluster.dominant_count) {
        cluster.dominant_count = causes[c];
        cluster.dominant = static_cast<logmodel::RootCause>(c);
      }
    }
    if (!any_unattributed && jobs.size() == 1) cluster.shared_job = *jobs.begin();
    out.push_back(cluster);
    i = j + 1;
  }
  return out;
}

ClusterSummary summarize_clusters(const std::vector<FailureCluster>& clusters) {
  ClusterSummary out;
  out.clusters = clusters.size();
  std::size_t same_cause = 0;
  std::size_t shared_job = 0;
  std::size_t shared_job_multi_blade = 0;
  double total = 0.0;
  for (const auto& c : clusters) {
    total += static_cast<double>(c.size);
    out.max_size = std::max(out.max_size, static_cast<double>(c.size));
    if (c.size < 2) continue;
    ++out.multi_failure_clusters;
    same_cause += c.same_cause();
    if (c.shared_job != -1) {
      ++shared_job;
      shared_job_multi_blade += c.distinct_blades > 1;
    }
  }
  if (out.clusters > 0) out.mean_size = total / static_cast<double>(out.clusters);
  if (out.multi_failure_clusters > 0) {
    out.same_cause_fraction =
        static_cast<double>(same_cause) / static_cast<double>(out.multi_failure_clusters);
  }
  if (shared_job > 0) {
    out.shared_job_multi_blade_fraction =
        static_cast<double>(shared_job_multi_blade) / static_cast<double>(shared_job);
  }
  return out;
}

}  // namespace hpcfail::core
