// Deterministic pseudo-random number generation for reproducible simulation.
//
// The standard library's distributions are not guaranteed to produce the
// same sequences across implementations, which would make golden tests and
// cross-machine reproduction of the synthetic corpora impossible.  We
// therefore ship a small, well-known generator (xoshiro256**) seeded through
// splitmix64, plus the handful of distributions the simulator needs, all
// with fully specified algorithms.
#pragma once

#include <array>
#include <cstdint>
#include <cmath>
#include <span>
#include <vector>

namespace hpcfail::util {

/// splitmix64 step; used for seeding and for cheap stateless hashing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// One-shot stateless 64-bit mix (useful for hashing IDs into streams).
[[nodiscard]] constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  std::uint64_t s = x;
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna: fast, 256-bit state, passes BigCrush.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words via splitmix64 so that any 64-bit seed
  /// (including 0) yields a valid, well-mixed state.
  explicit Rng(std::uint64_t seed = 0x853c49e6748fea9bULL) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& w : state_) w = splitmix64(sm);
    cached_normal_valid_ = false;
  }

  /// Derives an independent child stream. Children of the same parent with
  /// distinct ids are statistically independent for simulation purposes.
  [[nodiscard]] Rng fork(std::uint64_t stream_id) const noexcept {
    std::uint64_t h = state_[0] ^ mix64(stream_id + 0x632be59bd9b4e019ULL);
    return Rng{mix64(h ^ state_[3])};
  }

  [[nodiscard]] std::uint64_t next_u64() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // UniformRandomBitGenerator interface.
  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept { return ~0ULL; }
  std::uint64_t operator()() noexcept { return next_u64(); }

  /// Uniform double in [0, 1) with 53 bits of precision.
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in the inclusive range [lo, hi]. Requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) noexcept {
    const std::uint64_t span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
    // Lemire's unbiased bounded generation.
    std::uint64_t x = next_u64();
    unsigned __int128 m = static_cast<unsigned __int128>(x) * span;
    auto lowbits = static_cast<std::uint64_t>(m);
    if (lowbits < span) {
      const std::uint64_t threshold = (0 - span) % span;
      while (lowbits < threshold) {
        x = next_u64();
        m = static_cast<unsigned __int128>(x) * span;
        lowbits = static_cast<std::uint64_t>(m);
      }
    }
    return lo + static_cast<std::int64_t>(m >> 64);
  }

  [[nodiscard]] bool bernoulli(double p) noexcept { return uniform() < p; }

  /// Standard normal via Box-Muller; one draw is cached.
  [[nodiscard]] double normal() noexcept {
    if (cached_normal_valid_) {
      cached_normal_valid_ = false;
      return cached_normal_;
    }
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    cached_normal_ = r * std::sin(theta);
    cached_normal_valid_ = true;
    return r * std::cos(theta);
  }

  [[nodiscard]] double normal(double mean, double stddev) noexcept {
    return mean + stddev * normal();
  }

  /// Exponential with the given rate (mean 1/rate). Requires rate > 0.
  [[nodiscard]] double exponential(double rate) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return -std::log(u) / rate;
  }

  /// Weibull(shape k, scale lambda) via inverse transform.
  [[nodiscard]] double weibull(double shape, double scale) noexcept {
    double u = uniform();
    while (u <= 0.0) u = uniform();
    return scale * std::pow(-std::log(u), 1.0 / shape);
  }

  /// Log-normal with the given parameters of the underlying normal.
  [[nodiscard]] double lognormal(double mu, double sigma) noexcept {
    return std::exp(normal(mu, sigma));
  }

  /// Poisson-distributed count. Knuth's method for small means, normal
  /// approximation (clamped at zero) for large means.
  [[nodiscard]] std::int64_t poisson(double mean) noexcept;

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Zero-weight entries are never chosen; requires at least one positive
  /// weight.
  [[nodiscard]] std::size_t weighted_index(std::span<const double> weights) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i) - 1));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n, std::size_t k) noexcept;

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool cached_normal_valid_ = false;
};

}  // namespace hpcfail::util
