// Streaming summary statistics (Welford/Chan) with O(1) state, mergeable so
// that per-shard results from the thread pool can be combined exactly.
#pragma once

#include <cstdint>
#include <limits>

namespace hpcfail::stats {

class StreamingStats {
 public:
  void add(double x) noexcept {
    ++count_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Chan et al. parallel merge; exact up to floating-point rounding.
  void merge(const StreamingStats& other) noexcept {
    if (other.count_ == 0) return;
    if (count_ == 0) {
      *this = other;
      return;
    }
    const double delta = other.mean_ - mean_;
    const auto n1 = static_cast<double>(count_);
    const auto n2 = static_cast<double>(other.count_);
    const double n = n1 + n2;
    m2_ += other.m2_ + delta * delta * n1 * n2 / n;
    mean_ = (n1 * mean_ + n2 * other.mean_) / n;
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return count_ ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept {
    return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return count_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return count_ ? max_ : 0.0; }

 private:
  std::uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace hpcfail::stats
