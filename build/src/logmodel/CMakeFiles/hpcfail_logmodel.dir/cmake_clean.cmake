file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_logmodel.dir/event_type.cpp.o"
  "CMakeFiles/hpcfail_logmodel.dir/event_type.cpp.o.d"
  "CMakeFiles/hpcfail_logmodel.dir/log_store.cpp.o"
  "CMakeFiles/hpcfail_logmodel.dir/log_store.cpp.o.d"
  "libhpcfail_logmodel.a"
  "libhpcfail_logmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_logmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
