#include "loggen/renderer.hpp"

#include <cstdio>

#include "loggen/nid_ranges.hpp"
#include "util/table.hpp"

namespace hpcfail::loggen {

using logmodel::EventType;
using logmodel::LogRecord;
using logmodel::LogSource;

LogRenderer::LogRenderer(const platform::Topology& topo, platform::SchedulerKind scheduler,
                         const logmodel::SymbolTable& symbols)
    : topo_(topo), scheduler_(scheduler), symbols_(symbols) {}

std::string internal_payload(const LogRecord& r, const logmodel::SymbolTable& symbols) {
  const std::string detail{symbols.view(r.detail)};
  switch (r.type) {
    case EventType::KernelPanic:
      return "Kernel panic - not syncing: " + detail;
    case EventType::KernelOops:
      return "BUG: unable to handle kernel paging request at 00000000deadbeef";
    case EventType::CallTrace:
      return " [<ffffffff81234567>] " + detail + "+0x1a2/0x400";
    case EventType::MachineCheckException:
      return "mce: [Hardware Error]: Machine check events logged: " + detail;
    case EventType::HardwareError:
      return "EDAC MC0: " + detail;
    case EventType::CpuCorruption:
      return "mce: [Hardware Error]: PCC processor context corrupt: " + detail;
    case EventType::CpuStall:
      return "INFO: rcu_sched self-detected stall on CPU: " + detail;
    case EventType::BiosError:
      return "HEST: " + detail;
    case EventType::FirmwareBug:
      return "[Firmware Bug]: " + detail;
    case EventType::DriverBug:
      return "WARNING: driver bug: " + detail;
    case EventType::SegFault:
      return "app[31337]: segfault at 0 ip 00007f err 4: " + detail;
    case EventType::InvalidOpcode:
      return "invalid opcode: 0000 [#1] SMP: " + detail;
    case EventType::PageAllocationFailure:
      return detail + ", mode:0x4020";
    case EventType::OomKill:
      return detail + " score 987 or sacrifice child";
    case EventType::HungTaskTimeout:
      return "INFO: task blocked for more than 120 seconds: " + detail;
    case EventType::LustreBug:
      return "LustreError: LBUG - ASSERTION failed: " + detail;
    case EventType::LustreError:
      return "LustreError: 11-0: " + detail;
    case EventType::DvsError:
      return "DVS: " + detail;
    case EventType::InodeError:
      return "LDISKFS-fs error: bad inode: " + detail;
    case EventType::InterconnectError:
      return "hsn: link error detected: " + detail;
    case EventType::NodeShutdown:
      return "Shutdown: system going down: " + detail;
    case EventType::NodeHalt:
      return "System halted: " + detail;
    case EventType::NodeBoot:
      return "Booting Linux on physical CPU 0x0: " + detail;
    default:
      return detail;
  }
}

std::string_view erd_event_name(EventType t) noexcept {
  switch (t) {
    case EventType::NodeHeartbeatFault: return "ec_node_failed";
    case EventType::NodeVoltageFault: return "ec_node_voltage_fault";
    case EventType::BladeHeartbeatFault: return "ec_bc_heartbeat_fault";
    case EventType::EcHeartbeatStop: return "ec_heartbeat_stop";
    case EventType::EcL0Failed: return "ec_l0_failed";
    case EventType::EcHwError: return "ec_hw_error";
    case EventType::LinkError: return "ec_link_error";
    case EventType::LaneDegrade: return "ec_lane_degrade";
    case EventType::LinkFailover: return "ec_link_failover";
    case EventType::LinkFailoverFailed: return "ec_failover_failed";
    case EventType::GetSensorReadingFailed: return "ec_get_sensor_failed";
    default: return "ec_event";
  }
}

namespace {

/// Controller payload for controller-scoped event types.
std::string controller_payload(const LogRecord& r, const logmodel::SymbolTable& symbols) {
  const std::string detail{symbols.view(r.detail)};
  char value_buf[48];
  switch (r.type) {
    case EventType::SedcTemperatureWarning:
      std::snprintf(value_buf, sizeof value_buf, "%.3f", r.value);
      return std::string("ec_sedc_warning: CPU_TEMP reading ") + value_buf +
             " outside allowed band";
    case EventType::SedcVoltageWarning:
      std::snprintf(value_buf, sizeof value_buf, "%.3f", r.value);
      return std::string("ec_sedc_warning: VDD reading ") + value_buf + " below minimum";
    case EventType::SedcAirVelocityWarning:
      std::snprintf(value_buf, sizeof value_buf, "%.3f", r.value);
      return std::string("ec_sedc_warning: AIR_VEL reading ") + value_buf +
             " below minimum";
    case EventType::SedcFanSpeedWarning:
      std::snprintf(value_buf, sizeof value_buf, "%.3f", r.value);
      return std::string("ec_environment: fan speed deviation reading ") + value_buf;
    case EventType::SedcReading:
      std::snprintf(value_buf, sizeof value_buf, "%.3f", r.value);
      return "sedc: " + detail + " value=" + value_buf;
    case EventType::CabinetPowerFault:
      return "cabinet power fault detected";
    case EventType::CabinetMicroFault:
      return "cabinet micro controller fault";
    case EventType::CommunicationFault:
      return "communication fault: controller timeout";
    case EventType::ModuleHealthFault:
      return "module health fault";
    case EventType::RpmFault:
      return "RPM fault on fan 3";
    case EventType::EcbFault:
      return "ECB fault: circuit breaker tripped";
    case EventType::CabinetSensorCheck:
      return "cabinet sensor check failed";
    case EventType::GetSensorReadingFailed:
      return "get sensor reading failed";
    case EventType::BladeHeartbeatFault:
      return "bc heartbeat fault";
    case EventType::L0SysdMce:
      return "L0_sysd_mce: " + detail;
    default:
      return detail;
  }
}

}  // namespace

std::string LogRenderer::console_line(const LogRecord& r) const {
  std::string line = util::format_iso(r.time);
  line += ' ';
  line += topo_.node_name(r.node);
  if (topo_.config().naming == platform::NamingScheme::CrayCname) {
    line += ' ';
    line += topo_.cname_of(r.node).to_string();
  }
  line += r.source == LogSource::Consumer ? " hwerrd: " : " kernel: ";
  line += internal_payload(r, symbols_);
  if (r.has_job()) {
    line += " jobid=";
    line += std::to_string(r.job_id);
  }
  return line;
}

std::string LogRenderer::messages_line(const LogRecord& r) const {
  std::string line = util::format_syslog(r.time);
  line += ' ';
  line += topo_.node_name(r.node);
  line += " nhc[2114]: ";
  line += symbols_.view(r.detail);
  if (r.has_job()) {
    line += " jobid=";
    line += std::to_string(r.job_id);
  }
  return line;
}

std::string LogRenderer::controller_line(const LogRecord& r) const {
  std::string line = util::format_iso(r.time);
  line += ' ';
  if (r.has_node()) {
    line += topo_.cname_of(r.node).to_string();
  } else if (r.has_blade()) {
    line += topo_.cname_of_blade(r.blade).to_string();
  } else if (r.has_cabinet()) {
    line += topo_.cname_of_cabinet(r.cabinet).to_string();
  } else {
    line += "c?-?";
  }
  line += " cc: ";
  line += controller_payload(r, symbols_);
  return line;
}

std::string LogRenderer::erd_line(const LogRecord& r) const {
  std::string line = util::format_iso(r.time);
  line += " erd ev=";
  line += erd_event_name(r.type);
  line += " src=";
  if (r.has_node()) {
    line += topo_.cname_of(r.node).to_string();
  } else if (r.has_blade()) {
    line += topo_.cname_of_blade(r.blade).to_string();
  } else if (r.has_cabinet()) {
    line += topo_.cname_of_cabinet(r.cabinet).to_string();
  } else {
    line += "c0-0";
  }
  if (r.has_node()) {
    line += " node=";
    line += topo_.node_name(r.node);
  }
  line += ' ';
  line += symbols_.view(r.detail);
  return line;
}

std::string LogRenderer::scheduler_line(const LogRecord& r) const {
  // Minimal record-level rendering; full job groups come from
  // render_job_lines which also carries the node list.
  std::string line = util::format_iso(r.time);
  line += scheduler_ == platform::SchedulerKind::Slurm ? " slurmctld: " : " pbs_server: ";
  const std::string detail{symbols_.view(r.detail)};
  switch (r.type) {
    case EventType::JobStart:
      line += "sched: Allocate JobId=" + std::to_string(r.job_id) + " App=" + detail;
      break;
    case EventType::JobEnd:
      line += "JobId=" + std::to_string(r.job_id) +
              " Ended ExitCode=" + std::to_string(static_cast<int>(r.value)) +
              ":0 Reason=" + detail;
      break;
    case EventType::JobCancelled:
      line += "scancel JobId=" + std::to_string(r.job_id) + " " + detail;
      break;
    case EventType::JobOverallocation:
      line += "error: JobId=" + std::to_string(r.job_id) +
              " allocated memory exceeds node capacity";
      break;
    case EventType::EpilogueRun:
      line += "epilog complete JobId=" + std::to_string(r.job_id);
      break;
    case EventType::NhcSuspectMode:
      line += "NHC: suspect JobId=" + std::to_string(r.job_id);
      break;
    default:
      line += detail;
      break;
  }
  return line;
}

std::string LogRenderer::render(const LogRecord& r) const {
  switch (r.source) {
    case LogSource::Console:
    case LogSource::Consumer:
      return console_line(r);
    case LogSource::Messages:
      return messages_line(r);
    case LogSource::Controller:
      return controller_line(r);
    case LogSource::Erd:
      return erd_line(r);
    case LogSource::Scheduler:
      return scheduler_line(r);
    case LogSource::kCount:
      break;
  }
  return {};
}

std::vector<LogRenderer::SchedulerLine> LogRenderer::render_job_lines(
    const jobs::Job& job) const {
  std::vector<SchedulerLine> lines;
  char buf[64];

  std::snprintf(buf, sizeof buf, " MemPerNode=%.1fG", job.mem_per_node_gb);
  const std::string alloc_fields =
      "Apid=" + std::to_string(job.apid) + " User=" + job.user + " App=" + job.app_name +
      " NodeList=" + compress_node_list(job.nodes, topo_.config().naming) +
      " NodeCnt=" + std::to_string(job.nodes.size()) + buf;

  if (scheduler_ == platform::SchedulerKind::Slurm) {
    const std::string daemon = " slurmctld: ";
    lines.push_back({job.start, util::format_iso(job.start) + daemon +
                                    "sched: Allocate JobId=" + std::to_string(job.job_id) +
                                    ' ' + alloc_fields});
    if (job.outcome == jobs::JobOutcome::Overallocated) {
      const util::TimePoint t = job.start + util::Duration::seconds(30);
      lines.push_back({t, util::format_iso(t) + daemon + "error: JobId=" +
                              std::to_string(job.job_id) +
                              " OverallocCnt=" + std::to_string(job.overallocated_nodes) +
                              " allocated memory exceeds node capacity"});
    }
    if (job.outcome == jobs::JobOutcome::UserCancelled) {
      const util::TimePoint t = job.end - util::Duration::seconds(1);
      lines.push_back({t, util::format_iso(t) + daemon + "scancel JobId=" +
                              std::to_string(job.job_id) + " by user " + job.user});
    }
    lines.push_back({job.end, util::format_iso(job.end) + daemon + "JobId=" +
                                  std::to_string(job.job_id) +
                                  " Ended ExitCode=" + std::to_string(job.exit_code()) +
                                  ":0 Reason=" + std::string(to_string(job.outcome))});
    const util::TimePoint epi = job.end + util::Duration::seconds(5);
    lines.push_back({epi, util::format_iso(epi) + daemon +
                              "epilog complete JobId=" + std::to_string(job.job_id)});
    return lines;
  }

  // Torque/PBS server-log dialect:
  //   MM/DD/YYYY HH:MM:SS;0008;PBS_Server;Job;<id>.sdb;<payload>
  auto torque = [&job](util::TimePoint t, const std::string& payload) {
    return SchedulerLine{t, util::format_torque(t) + ";0008;PBS_Server;Job;" +
                                std::to_string(job.job_id) + ".sdb;" + payload};
  };
  lines.push_back(torque(job.start, "Job Run " + alloc_fields));
  if (job.outcome == jobs::JobOutcome::Overallocated) {
    lines.push_back(torque(job.start + util::Duration::seconds(30),
                           "OverallocCnt=" + std::to_string(job.overallocated_nodes) +
                               " allocated memory exceeds node capacity"));
  }
  if (job.outcome == jobs::JobOutcome::UserCancelled) {
    lines.push_back(
        torque(job.end - util::Duration::seconds(1), "Job deleted by user " + job.user));
  }
  lines.push_back(torque(job.end, "Exit_status=" + std::to_string(job.exit_code()) +
                                      " Reason=" + std::string(to_string(job.outcome))));
  lines.push_back(torque(job.end + util::Duration::seconds(5), "Epilogue complete"));
  return lines;
}

}  // namespace hpcfail::loggen
