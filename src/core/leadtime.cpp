#include "core/leadtime.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

#include "util/thread_pool.hpp"

namespace hpcfail::core {

using logmodel::EventType;
using logmodel::LogRecord;

LeadTimeAnalyzer::LeadTimeAnalyzer(const logmodel::LogStore& store, LeadTimeConfig config)
    : store_(store), config_(config) {
  if (!store.finalized()) {
    throw std::logic_error(
        "LeadTimeAnalyzer: store must be finalized before analysis (call "
        "LogStore::finalize() after the last add())");
  }
}

bool LeadTimeAnalyzer::quiet_before(platform::BladeId blade, platform::NodeId node,
                                    logmodel::EventType type,
                                    util::TimePoint window_start) const {
  for (const std::uint32_t idx : store_.blade_range(
           blade, window_start - config_.quiet_window, window_start)) {
    const LogRecord& r = store_[idx];
    if (r.type != type) continue;
    if (r.has_node() && r.node != node) continue;
    return false;  // the indicator is ambient on this blade, not an anomaly
  }
  return true;
}

std::optional<util::TimePoint> LeadTimeAnalyzer::earliest_external(
    const FailureEvent& event) const {
  std::optional<util::TimePoint> earliest;
  const util::TimePoint begin = event.time - config_.external_lookback;
  for (const std::uint32_t idx :
       store_.blade_range(event.blade, begin, event.time)) {
    const LogRecord& r = store_[idx];
    if (!logmodel::is_external_indicator(r.type)) continue;
    // NHFs trail node death; they confirm but never lead, so they cannot
    // open the window.
    if (r.type == EventType::NodeHeartbeatFault) continue;
    // Node-scoped indicators must be for this node.
    if (r.has_node() && r.node != event.node) continue;
    if (config_.require_quiet_baseline &&
        !quiet_before(event.blade, event.node, r.type, begin)) {
      continue;
    }
    if (!earliest || r.time < *earliest) earliest = r.time;
  }
  return earliest;
}

bool LeadTimeAnalyzer::external_indicator_near(platform::NodeId node,
                                               platform::BladeId blade, util::TimePoint t,
                                               util::Duration lookback) const {
  for (const std::uint32_t idx : store_.blade_range(blade, t - lookback, t)) {
    const LogRecord& r = store_[idx];
    if (!logmodel::is_external_indicator(r.type)) continue;
    if (r.type == EventType::NodeHeartbeatFault) continue;
    if (r.has_node() && r.node != node) continue;
    if (config_.require_quiet_baseline && !quiet_before(blade, node, r.type, t - lookback)) {
      continue;  // ambient on this blade, not an anomaly
    }
    return true;
  }
  return false;
}

std::vector<FailureLeadTime> LeadTimeAnalyzer::lead_times(
    const std::vector<AnalyzedFailure>& failures, util::ThreadPool* pool) const {
  std::vector<FailureLeadTime> out(failures.size());
  const auto attribute = [&](std::size_t i) {
    const auto& f = failures[i];
    FailureLeadTime lt;
    lt.failure_index = i;
    lt.internal_lead = f.event.time - f.event.first_internal;
    if (const auto external = earliest_external(f.event)) {
      const util::Duration external_lead = f.event.time - *external;
      if (external_lead - lt.internal_lead >= config_.min_gain) {
        lt.external_lead = external_lead;
      }
    }
    out[i] = lt;
  };
  // Each attribution reads only the immutable store and writes its own
  // slot, so the sharded path assembles index-ordered and is identical to
  // the serial loop.
  if (pool != nullptr && failures.size() > 1) {
    pool->parallel_for(failures.size(), attribute);
  } else {
    for (std::size_t i = 0; i < failures.size(); ++i) attribute(i);
  }
  return out;
}

LeadTimeSummary LeadTimeAnalyzer::summarize(
    const std::vector<AnalyzedFailure>& failures) const {
  return summarize_lead_times(lead_times(failures));
}

LeadTimeSummary LeadTimeAnalyzer::summarize_lead_times(
    const std::vector<FailureLeadTime>& lead_times) {
  LeadTimeSummary out;
  for (const auto& lt : lead_times) {
    ++out.failures;
    out.internal_minutes.add(lt.internal_lead.to_minutes());
    if (lt.enhanceable()) {
      ++out.enhanceable;
      out.internal_minutes_enh.add(lt.internal_lead.to_minutes());
      out.external_minutes.add(lt.external_lead->to_minutes());
    }
  }
  return out;
}

PredictorEvaluation LeadTimeAnalyzer::evaluate_predictor(
    const std::vector<AnalyzedFailure>& failures, bool require_external,
    util::Duration horizon, util::Duration pattern_window) const {
  // Failure times per node, for outcome checks.
  std::unordered_map<std::uint32_t, std::vector<util::TimePoint>> failure_times;
  for (const auto& f : failures) {
    failure_times[f.event.node.value].push_back(f.event.time);
  }

  PredictorEvaluation out;
  // Walk every node's records; flag when two indicative records of
  // different types land within pattern_window (dedup per horizon).
  for (const auto node : store_.nodes()) {
    const auto idx = store_.node_index(node);
    util::TimePoint last_flag;
    bool flagged_before = false;
    util::TimePoint prev_time;
    logmodel::EventType prev_type = logmodel::EventType::NodeBoot;
    bool prev_valid = false;
    for (const std::uint32_t i : idx) {
      const LogRecord& r = store_[i];
      if (!logmodel::is_internal_indicator(r.type)) continue;
      const bool pattern = prev_valid && r.type != prev_type &&
                           r.time - prev_time <= pattern_window;
      prev_valid = true;
      prev_time = r.time;
      prev_type = r.type;
      if (!pattern) continue;
      if (flagged_before && r.time - last_flag < horizon) continue;  // same episode
      flagged_before = true;
      last_flag = r.time;
      if (require_external &&
          !external_indicator_near(node, r.blade, r.time, config_.external_lookback)) {
        continue;
      }
      ++out.flagged;
      bool failed = false;
      const auto ft = failure_times.find(node.value);
      if (ft != failure_times.end()) {
        for (const auto t : ft->second) {
          if (t >= r.time && t - r.time <= horizon) {
            failed = true;
            break;
          }
        }
      }
      if (failed) {
        ++out.true_positive;
      } else {
        ++out.false_positive;
      }
    }
  }
  return out;
}

}  // namespace hpcfail::core
