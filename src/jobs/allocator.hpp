// Node allocation for the synthetic workload.
//
// Two policies mirror how real schedulers place jobs:
//   BladePacked - fill whole blades first (spatially contiguous), so an
//                 application-triggered chain takes out co-located nodes;
//   Scattered   - random free nodes anywhere, producing the paper's
//                 "spatially distant yet temporally correlated" failures
//                 (Observation 8).
#pragma once

#include <cstdint>
#include <vector>

#include "platform/topology.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace hpcfail::jobs {

enum class AllocPolicy : std::uint8_t { BladePacked, Scattered };

class NodeAllocator {
 public:
  explicit NodeAllocator(const platform::Topology& topo);

  /// Tries to reserve `count` nodes over [start, end). Returns the nodes,
  /// or an empty vector when not enough are free at `start`.
  [[nodiscard]] std::vector<platform::NodeId> allocate(std::uint32_t count,
                                                       util::TimePoint start,
                                                       util::TimePoint end,
                                                       AllocPolicy policy, util::Rng& rng);

  /// Releases a node early (e.g. the node failed and was rebooted).
  void release(platform::NodeId node, util::TimePoint at) noexcept;

  /// Number of nodes free at `t`.
  [[nodiscard]] std::uint32_t free_count(util::TimePoint t) const noexcept;

 private:
  const platform::Topology& topo_;
  std::vector<util::TimePoint> free_at_;  ///< per node: when it becomes free
};

}  // namespace hpcfail::jobs
