#include "logmodel/store_builder.hpp"

#include <algorithm>
#include <new>
#include <queue>

#include "util/fault.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace hpcfail::logmodel {

namespace {

bool time_less(const LogRecord& a, const LogRecord& b) noexcept { return a.time < b.time; }

/// Shard-size bucket edges in records: shards are sealed near the configured
/// shard_records target, so the histogram mostly shows the tail of short
/// final shards.
const std::vector<double>& shard_bounds() {
  static const std::vector<double> bounds = {256,    1024,    4096,   16384,
                                             65536,  262144,  1048576};
  return bounds;
}

/// Records one sealed shard against the installed registry (if any).
void note_shard(std::size_t records) {
  if (util::MetricsRegistry* reg = util::metrics()) {
    reg->counter("hpcfail.store.shards_sealed").increment();
    reg->histogram("hpcfail.store.shard_records", shard_bounds())
        .observe(static_cast<double>(records));
  }
}

}  // namespace

StoreBuilder::StoreBuilder(std::size_t shard_records)
    : shard_records_(std::max<std::size_t>(1, shard_records)) {}

void StoreBuilder::seal_current() {
  if (current_.empty()) return;
  note_shard(current_.size());
  shards_.push_back(std::move(current_));
  current_ = {};
}

void StoreBuilder::append(LogRecord r) {
  current_.push_back(r);
  ++count_;
  if (current_.size() >= shard_records_) seal_current();
}

void StoreBuilder::append_batch(std::vector<LogRecord> batch,
                                const SymbolTable& batch_symbols) {
  if (HPCFAIL_FAULT_SITE("store.append_batch.bad_alloc")) throw std::bad_alloc{};
  if (batch.empty()) return;
  // Rewrite chunk-local Symbols into the builder's table.  absorb() is a
  // hash probe per *distinct* string, the remap a table lookup per record.
  const std::vector<Symbol> remap = symbols_.absorb(batch_symbols);
  for (LogRecord& r : batch) r.detail = remap[r.detail.id];
  append_batch(std::move(batch));
}

void StoreBuilder::append_batch(std::vector<LogRecord> batch) {
  if (batch.empty()) return;
  // count_ is bumped only after the records are in place, so a bad_alloc
  // from the insert can't leave record_count() claiming records the store
  // never received.
  const std::size_t records = batch.size();
  if (current_.empty() && records >= shard_records_) {
    note_shard(records);
    shards_.push_back(std::move(batch));
    count_ += records;
    return;
  }
  current_.insert(current_.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
  count_ += records;
  if (current_.size() >= shard_records_) seal_current();
}

LogStore StoreBuilder::build(util::ThreadPool* pool) {
  seal_current();
  std::vector<std::vector<LogRecord>> shards = std::move(shards_);
  shards_ = {};
  count_ = 0;
  SymbolTable symbols = std::move(symbols_);
  symbols_ = SymbolTable{};

  if (shards.empty()) return LogStore::from_sorted({}, std::move(symbols));
  if (shards.size() == 1) {
    util::TraceSpan span("hpcfail.store.sort_shards");
    std::stable_sort(shards[0].begin(), shards[0].end(), time_less);
    return LogStore::from_sorted(std::move(shards[0]), std::move(symbols));
  }

  {
    util::TraceSpan span("hpcfail.store.sort_shards");
    const auto sort_shard = [&shards](std::size_t i) {
      std::stable_sort(shards[i].begin(), shards[i].end(), time_less);
    };
    if (pool != nullptr && pool->size() > 1) {
      pool->parallel_for(shards.size(), sort_shard);
    } else {
      for (std::size_t i = 0; i < shards.size(); ++i) sort_shard(i);
    }
  }

  // K-way merge with a min-heap keyed (time, shard index).  Shards hold
  // contiguous runs of the append sequence, so breaking time ties by shard
  // index reproduces the order a global stable_sort would have produced.
  util::TraceSpan merge_span("hpcfail.store.merge_shards");
  std::size_t total = 0;
  for (const auto& s : shards) total += s.size();
  std::vector<LogRecord> merged;
  merged.reserve(total);

  struct Head {
    std::int64_t time_usec;
    std::size_t shard;
  };
  const auto later = [](const Head& a, const Head& b) noexcept {
    return a.time_usec != b.time_usec ? a.time_usec > b.time_usec : a.shard > b.shard;
  };
  std::priority_queue<Head, std::vector<Head>, decltype(later)> heap(later);
  std::vector<std::size_t> cursor(shards.size(), 0);
  for (std::size_t s = 0; s < shards.size(); ++s) {
    if (!shards[s].empty()) heap.push(Head{shards[s][0].time.usec, s});
  }
  while (!heap.empty()) {
    const std::size_t s = heap.top().shard;
    heap.pop();
    merged.push_back(shards[s][cursor[s]]);
    if (++cursor[s] < shards[s].size()) {
      heap.push(Head{shards[s][cursor[s]].time.usec, s});
    } else {
      shards[s] = {};  // release the drained shard's memory early
    }
  }
  return LogStore::from_sorted(std::move(merged), std::move(symbols));
}

}  // namespace hpcfail::logmodel
