// Bounded-memory text chunking for the streaming ingestion pipeline.
//
// A ChunkedLineReader pulls fixed-size chunks out of an std::istream and
// extends each chunk to the next line boundary, so every chunk a consumer
// sees is a whole number of lines and a line is never split across two
// chunks.  Memory use is O(chunk_bytes + longest line), independent of the
// stream length — this is what lets parsers::ingest_files parse a corpus
// far larger than RAM.
//
// Boundary behaviour:
//   - a line longer than chunk_bytes is returned whole (the chunk grows);
//   - a final line without a trailing '\n' is returned as-is;
//   - CRLF line endings pass through untouched (util::split_lines strips
//     the '\r' when the chunk is split into line views).
//
// Error behaviour: end-of-file is NOT the only way a stream stops.  A read
// that leaves the stream bad() — or fail() without eof() — is a stream I/O
// error, and next() throws IoError carrying the byte offset instead of
// quietly treating the error as EOF (which would silently truncate the
// corpus and mis-diagnose the analysis input).  The `ingest.read.*` fault
// sites (util/fault.hpp) let tests provoke each degraded ending on demand.
#pragma once

#include <cstddef>
#include <istream>
#include <stdexcept>
#include <string>

namespace hpcfail::util {

/// A stream I/O failure that is not end-of-file, thrown with the stream
/// offset (bytes consumed before the error) so the operator can locate the
/// corruption instead of guessing from a truncated analysis.
class IoError : public std::runtime_error {
 public:
  IoError(const std::string& what, std::size_t offset)
      : std::runtime_error(what), byte_offset(offset) {}

  std::size_t byte_offset = 0;
};

class ChunkedLineReader {
 public:
  /// `chunk_bytes == 0` is clamped to 1.  The stream must outlive the reader.
  explicit ChunkedLineReader(std::istream& in, std::size_t chunk_bytes);

  /// Fills `chunk` with the next run of complete lines (~chunk_bytes of
  /// text, extended to the last '\n'; the final chunk may lack one).
  /// Returns false — with `chunk` empty — once the stream is exhausted.
  /// Throws IoError when the stream reports an error that is not EOF.
  [[nodiscard]] bool next(std::string& chunk);

  /// Bytes handed out so far (chunk payloads, including newlines).
  [[nodiscard]] std::size_t bytes_read() const noexcept { return bytes_read_; }

 private:
  std::istream& in_;
  std::size_t chunk_bytes_;
  std::string carry_;  ///< partial trailing line from the previous read
  std::size_t bytes_read_ = 0;
  bool eof_ = false;
};

}  // namespace hpcfail::util
