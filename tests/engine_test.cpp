// AnalysisEngine equivalence and determinism (the tentpole guarantees):
//
//  1. On every system preset S1-S5 the engine's AnalysisResult is
//     record-for-record identical to the legacy hand-wired path
//     (FailureDetector + RootCauseEngine + LeadTimeAnalyzer +
//     ExternalCorrelator + BenignFaultAnalyzer + cluster_failures + report
//     helpers, each wired by hand, serial).
//  2. Same seed, 1 vs N threads: identical AnalysisResult — the parallel
//     per-failure stages assemble index-ordered, byte-identical to serial.
//
// Doubles are compared with EXPECT_EQ on purpose: both paths must execute
// the same operations in the same order, so even floating-point aggregates
// match exactly.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "core/benign_faults.hpp"
#include "core/clusters.hpp"
#include "core/engine.hpp"
#include "core/external_correlator.hpp"
#include "core/failure_detector.hpp"
#include "core/leadtime.hpp"
#include "core/report.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"
#include "util/trace.hpp"

namespace hpcfail {
namespace {

struct Corpus {
  faultsim::ScenarioConfig scenario;
  parsers::ParsedCorpus parsed;
};

Corpus make_corpus(platform::SystemName system, int days, std::uint64_t seed) {
  Corpus c;
  c.scenario = faultsim::scenario_preset(system, days, seed);
  const auto sim = faultsim::Simulator(c.scenario).run();
  c.parsed = parsers::parse_corpus(loggen::build_corpus(sim));
  return c;
}

void expect_failures_equal(const std::vector<core::AnalyzedFailure>& a,
                           const std::vector<core::AnalyzedFailure>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("failure " + std::to_string(i));
    EXPECT_EQ(a[i].event.node.value, b[i].event.node.value);
    EXPECT_EQ(a[i].event.blade.value, b[i].event.blade.value);
    EXPECT_EQ(a[i].event.cabinet.value, b[i].event.cabinet.value);
    EXPECT_EQ(a[i].event.time.usec, b[i].event.time.usec);
    EXPECT_EQ(a[i].event.marker, b[i].event.marker);
    EXPECT_EQ(a[i].event.job_id, b[i].event.job_id);
    EXPECT_EQ(a[i].event.first_internal.usec, b[i].event.first_internal.usec);
    EXPECT_EQ(a[i].event.chain, b[i].event.chain);
    EXPECT_EQ(a[i].inference.cause, b[i].inference.cause);
    EXPECT_EQ(a[i].inference.confidence, b[i].inference.confidence);
    EXPECT_EQ(a[i].inference.application_triggered, b[i].inference.application_triggered);
    EXPECT_EQ(a[i].inference.rationale, b[i].inference.rationale);
    EXPECT_EQ(a[i].inference.evidence.stack_modules, b[i].inference.evidence.stack_modules);
  }
}

void expect_lead_times_equal(const std::vector<core::FailureLeadTime>& a,
                             const std::vector<core::FailureLeadTime>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("lead time " + std::to_string(i));
    EXPECT_EQ(a[i].failure_index, b[i].failure_index);
    EXPECT_EQ(a[i].internal_lead.usec, b[i].internal_lead.usec);
    ASSERT_EQ(a[i].external_lead.has_value(), b[i].external_lead.has_value());
    if (a[i].external_lead) {
      EXPECT_EQ(a[i].external_lead->usec, b[i].external_lead->usec);
    }
  }
}

void expect_stats_equal(const stats::StreamingStats& a, const stats::StreamingStats& b) {
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.mean(), b.mean());
  EXPECT_EQ(a.stddev(), b.stddev());
}

void expect_summary_equal(const core::LeadTimeSummary& a, const core::LeadTimeSummary& b) {
  EXPECT_EQ(a.failures, b.failures);
  EXPECT_EQ(a.enhanceable, b.enhanceable);
  expect_stats_equal(a.internal_minutes, b.internal_minutes);
  expect_stats_equal(a.internal_minutes_enh, b.internal_minutes_enh);
  expect_stats_equal(a.external_minutes, b.external_minutes);
}

void expect_clusters_equal(const std::vector<core::FailureCluster>& a,
                           const std::vector<core::FailureCluster>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    SCOPED_TRACE("cluster " + std::to_string(i));
    EXPECT_EQ(a[i].first_index, b[i].first_index);
    EXPECT_EQ(a[i].size, b[i].size);
    EXPECT_EQ(a[i].begin.usec, b[i].begin.usec);
    EXPECT_EQ(a[i].end.usec, b[i].end.usec);
    EXPECT_EQ(a[i].distinct_nodes, b[i].distinct_nodes);
    EXPECT_EQ(a[i].distinct_blades, b[i].distinct_blades);
    EXPECT_EQ(a[i].dominant, b[i].dominant);
    EXPECT_EQ(a[i].dominant_count, b[i].dominant_count);
    EXPECT_EQ(a[i].shared_job, b[i].shared_job);
  }
}

void expect_results_equal(const core::AnalysisResult& a, const core::AnalysisResult& b) {
  EXPECT_EQ(a.begin.usec, b.begin.usec);
  EXPECT_EQ(a.end.usec, b.end.usec);
  expect_failures_equal(a.failures, b.failures);
  ASSERT_EQ(a.swos.size(), b.swos.size());
  EXPECT_EQ(a.intended_shutdowns_excluded, b.intended_shutdowns_excluded);
  EXPECT_EQ(a.breakdown.counts, b.breakdown.counts);
  EXPECT_EQ(a.breakdown.total, b.breakdown.total);
  EXPECT_EQ(a.layers.hardware, b.layers.hardware);
  EXPECT_EQ(a.layers.software, b.layers.software);
  EXPECT_EQ(a.layers.application, b.layers.application);
  EXPECT_EQ(a.layers.unknown, b.layers.unknown);
  expect_lead_times_equal(a.lead_times, b.lead_times);
  expect_summary_equal(a.lead_time_summary, b.lead_time_summary);
  EXPECT_EQ(a.nvf.faults, b.nvf.faults);
  EXPECT_EQ(a.nvf.matched, b.nvf.matched);
  EXPECT_EQ(a.nhf.faults, b.nhf.faults);
  EXPECT_EQ(a.nhf.matched, b.nhf.matched);
  EXPECT_EQ(a.nhf_breakdown.total, b.nhf_breakdown.total);
  EXPECT_EQ(a.nhf_breakdown.failed, b.nhf_breakdown.failed);
  EXPECT_EQ(a.sedc.warning_count, b.sedc.warning_count);
  EXPECT_EQ(a.sedc.fault_count, b.sedc.fault_count);
  EXPECT_EQ(a.interconnect.lane_degrades, b.interconnect.lane_degrades);
  expect_clusters_equal(a.clusters, b.clusters);
  EXPECT_EQ(a.cluster_summary.clusters, b.cluster_summary.clusters);
  EXPECT_EQ(a.cluster_summary.same_cause_fraction, b.cluster_summary.same_cause_fraction);
}

/// The engine must be record-for-record identical to the legacy
/// hand-wired path on every system dialect.
class EngineEquivalence : public ::testing::TestWithParam<platform::SystemName> {};

TEST_P(EngineEquivalence, MatchesLegacyHandWiredPath) {
  const auto c = make_corpus(GetParam(), 7, 3100);
  const auto& store = c.parsed.store;
  const auto begin = c.scenario.begin;
  const auto end = c.scenario.end();

  // Legacy path: each analyzer hand-wired, serial.
  const core::FailureDetector detector{core::DetectorConfig{}};
  const core::RootCauseEngine root_cause{core::RootCauseConfig{}};
  auto events = detector.detect(store, &c.parsed.jobs);
  std::vector<core::AnalyzedFailure> failures(events.size());
  for (std::size_t i = 0; i < events.size(); ++i) {
    failures[i].event = std::move(events[i]);
    failures[i].inference = root_cause.diagnose(store, failures[i].event, &c.parsed.jobs);
  }
  const core::LeadTimeAnalyzer leadtime(store);
  const auto lead_times = leadtime.lead_times(failures);
  const auto lt_summary = leadtime.summarize(failures);
  const core::ExternalCorrelator correlator(store, failures);
  const auto nvf =
      correlator.correspondence(logmodel::EventType::NodeVoltageFault, begin, end);
  const auto nhf =
      correlator.correspondence(logmodel::EventType::NodeHeartbeatFault, begin, end);
  const auto nhf_breakdown = correlator.nhf_breakdown(begin, end);
  const core::BenignFaultAnalyzer benign(store);
  const auto sedc = benign.sedc_population(begin, end);
  const auto clusters = core::cluster_failures(failures);
  const auto breakdown = core::cause_breakdown(failures);
  const auto layers = core::layer_shares(failures);

  // Unified path: one engine run over the same window.
  const core::AnalysisEngine engine;
  const auto result = engine.analyze(store, &c.parsed.jobs, begin, end);

  ASSERT_GT(result.failures.size(), 0u) << "preset produced no failures";
  expect_failures_equal(result.failures, failures);
  expect_lead_times_equal(result.lead_times, lead_times);
  expect_summary_equal(result.lead_time_summary, lt_summary);
  EXPECT_EQ(result.nvf.faults, nvf.faults);
  EXPECT_EQ(result.nvf.matched, nvf.matched);
  EXPECT_EQ(result.nhf.faults, nhf.faults);
  EXPECT_EQ(result.nhf.matched, nhf.matched);
  EXPECT_EQ(result.nhf_breakdown.total, nhf_breakdown.total);
  EXPECT_EQ(result.nhf_breakdown.failed, nhf_breakdown.failed);
  EXPECT_EQ(result.nhf_breakdown.power_off, nhf_breakdown.power_off);
  EXPECT_EQ(result.sedc.blades_with_warnings, sedc.blades_with_warnings);
  EXPECT_EQ(result.sedc.warning_count, sedc.warning_count);
  expect_clusters_equal(result.clusters, clusters);
  EXPECT_EQ(result.breakdown.counts, breakdown.counts);
  EXPECT_EQ(result.breakdown.total, breakdown.total);
  EXPECT_EQ(result.layers.hardware, layers.hardware);
  EXPECT_EQ(result.layers.software, layers.software);
  EXPECT_EQ(result.layers.application, layers.application);
  EXPECT_EQ(result.layers.memory_exhaustion, layers.memory_exhaustion);
  EXPECT_EQ(result.layers.application_triggered, layers.application_triggered);
}

INSTANTIATE_TEST_SUITE_P(AllSystems, EngineEquivalence,
                         ::testing::Values(platform::SystemName::S1, platform::SystemName::S2,
                                           platform::SystemName::S3, platform::SystemName::S4,
                                           platform::SystemName::S5),
                         [](const auto& info) {
                           return std::string(platform::to_string(info.param));
                         });

/// Same seed, 1 vs N threads: the sharded per-failure stages must
/// assemble identically — no ordering or partial-aggregation drift.
TEST(EngineDeterminism, OneVsManyThreadsIdentical) {
  const auto c = make_corpus(platform::SystemName::S1, 10, 3200);

  util::ThreadPool one(1);
  util::ThreadPool many(4);
  core::AnalysisConfig serial_config;
  serial_config.pool = &one;
  core::AnalysisConfig parallel_config;
  parallel_config.pool = &many;

  const auto serial = core::AnalysisEngine(serial_config)
                          .analyze(c.parsed.store, &c.parsed.jobs, c.scenario.begin,
                                   c.scenario.end());
  const auto parallel = core::AnalysisEngine(parallel_config)
                            .analyze(c.parsed.store, &c.parsed.jobs, c.scenario.begin,
                                     c.scenario.end());
  ASSERT_GT(serial.failures.size(), 1u);
  expect_results_equal(serial, parallel);

  // And the no-pool engine (fully serial loops) agrees with both.
  const auto unpooled = core::AnalysisEngine().analyze(
      c.parsed.store, &c.parsed.jobs, c.scenario.begin, c.scenario.end());
  expect_results_equal(unpooled, parallel);
}

/// The ParsedCorpus overload analyzes the corpus's full extent.
TEST(EngineTest, ParsedCorpusOverloadCoversFullExtent) {
  const auto c = make_corpus(platform::SystemName::S1, 5, 3300);
  const core::AnalysisEngine engine;
  const auto result = engine.analyze(c.parsed);
  EXPECT_EQ(result.begin.usec, c.parsed.store.first_time().usec);
  EXPECT_GT(result.end.usec, result.begin.usec);
  EXPECT_GT(result.failures.size(), 0u);
  // Lead times index the failure list one-to-one.
  ASSERT_EQ(result.lead_times.size(), result.failures.size());
  for (std::size_t i = 0; i < result.lead_times.size(); ++i) {
    EXPECT_EQ(result.lead_times[i].failure_index, i);
  }
}

/// Extension analyzers run after the built-ins and see their output.
TEST(EngineTest, RegisteredAnalyzerRunsAfterBuiltins) {
  const auto c = make_corpus(platform::SystemName::S1, 5, 3400);
  core::AnalysisEngine engine;
  std::size_t seen_failures = 0;
  std::size_t seen_lead_times = 0;
  engine.register_analyzer("probe", [&](const core::AnalysisContext& ctx,
                                        core::AnalysisResult& out) {
    seen_failures = ctx.failures().size();
    seen_lead_times = out.lead_times.size();
  });
  const auto names = engine.analyzer_names();
  ASSERT_FALSE(names.empty());
  EXPECT_EQ(names.front(), "cause-aggregates");
  EXPECT_EQ(names.back(), "probe");

  const auto result = engine.analyze(c.parsed);
  EXPECT_EQ(seen_failures, result.failures.size());
  EXPECT_EQ(seen_lead_times, result.lead_times.size());
}

/// The context's joins agree with a direct scan of the failure list.
TEST(EngineTest, ContextJoinsAreConsistent) {
  const auto c = make_corpus(platform::SystemName::S1, 7, 3500);
  const core::AnalysisContext ctx(c.parsed.store, &c.parsed.jobs, c.scenario.begin,
                                  c.scenario.end());
  const auto& failures = ctx.failures();
  ASSERT_GT(failures.size(), 0u);

  std::size_t joined = 0;
  for (std::size_t i = 0; i < failures.size(); ++i) {
    const auto* on_node = ctx.failures_on_node(failures[i].event.node);
    ASSERT_NE(on_node, nullptr);
    EXPECT_NE(std::find(on_node->begin(), on_node->end(), i), on_node->end());
    if (failures[i].event.job_id != logmodel::kNoJob) {
      const auto* of_job = ctx.failures_of_job(failures[i].event.job_id);
      ASSERT_NE(of_job, nullptr);
      EXPECT_NE(std::find(of_job->begin(), of_job->end(), i), of_job->end());
      ++joined;
    }
  }
  EXPECT_EQ(ctx.failures_of_job(logmodel::kNoJob), nullptr);

  // Histogram counts in-window records exactly.
  std::size_t histogram_total = 0;
  for (const auto count : ctx.type_histogram()) histogram_total += count;
  EXPECT_EQ(histogram_total,
            c.parsed.store.range(c.scenario.begin, c.scenario.end()).size());
}

/// Fail-loud guards: a non-finalized store is rejected at construction by
/// the context and by the store-referencing analyzers (satellite of the
/// PR 2 non-finalized-store guard).
TEST(EngineTest, NonFinalizedStoreThrowsAtConstruction) {
  logmodel::LogStore store;
  store.add(logmodel::LogRecord{});
  ASSERT_FALSE(store.finalized());
  const std::vector<core::AnalyzedFailure> none;
  EXPECT_THROW(core::AnalysisContext(store, nullptr, {}, {}), std::logic_error);
  EXPECT_THROW(core::LeadTimeAnalyzer analyzer(store), std::logic_error);
  EXPECT_THROW(core::ExternalCorrelator correlator(store, none), std::logic_error);
}

/// Uninstalls the process-wide observability sinks even on test failure.
struct SinkGuard {
  SinkGuard(util::MetricsRegistry* m, util::TraceRecorder* t) {
    util::install_metrics(m);
    util::install_trace(t);
  }
  ~SinkGuard() {
    util::install_metrics(nullptr);
    util::install_trace(nullptr);
  }
};

/// Instrumentation must observe, never perturb: with metrics and tracing
/// installed the engine's AnalysisResult is byte-identical to the dark run
/// on every system dialect.
class EngineMetricsEquivalence : public ::testing::TestWithParam<platform::SystemName> {};

TEST_P(EngineMetricsEquivalence, MetricsOnVsOffIdenticalResult) {
  const auto c = make_corpus(GetParam(), 5, 3600);
  const core::AnalysisEngine engine;
  const auto dark = engine.analyze(c.parsed);

  util::MetricsRegistry registry;
  util::TraceRecorder recorder;
  core::AnalysisResult lit;
  {
    SinkGuard guard(&registry, &recorder);
    lit = engine.analyze(c.parsed);
  }
  expect_results_equal(dark, lit);

  // The instrumented run did record: the engine span plus one span per
  // registered analyzer.
  std::size_t analyzer_spans = 0;
  bool saw_engine_run = false;
  for (const auto& e : recorder.events()) {
    saw_engine_run = saw_engine_run || e.name == "hpcfail.engine.run";
    if (e.name.rfind("hpcfail.engine.analyzer_", 0) == 0) ++analyzer_spans;
  }
  EXPECT_TRUE(saw_engine_run);
  EXPECT_EQ(analyzer_spans, engine.analyzer_names().size());
}

INSTANTIATE_TEST_SUITE_P(AllSystems, EngineMetricsEquivalence,
                         ::testing::Values(platform::SystemName::S1, platform::SystemName::S2,
                                           platform::SystemName::S3, platform::SystemName::S4,
                                           platform::SystemName::S5),
                         [](const auto& info) {
                           return std::string(platform::to_string(info.param));
                         });

/// 1 vs N threads with both sinks live: the pool's queue-depth gauge and
/// task-latency histogram fire from worker threads, and the result still
/// matches the dark serial run exactly.
TEST(EngineMetricsEquivalence, InstrumentedOneVsManyThreadsIdentical) {
  const auto c = make_corpus(platform::SystemName::S1, 7, 3700);
  const auto dark = core::AnalysisEngine().analyze(
      c.parsed.store, &c.parsed.jobs, c.scenario.begin, c.scenario.end());
  ASSERT_GT(dark.failures.size(), 1u);

  util::MetricsRegistry registry;
  util::TraceRecorder recorder;
  core::AnalysisResult serial;
  core::AnalysisResult parallel;
  {
    SinkGuard guard(&registry, &recorder);
    util::ThreadPool one(1);
    util::ThreadPool many(4);
    core::AnalysisConfig serial_config;
    serial_config.pool = &one;
    core::AnalysisConfig parallel_config;
    parallel_config.pool = &many;
    serial = core::AnalysisEngine(serial_config)
                 .analyze(c.parsed.store, &c.parsed.jobs, c.scenario.begin,
                          c.scenario.end());
    parallel = core::AnalysisEngine(parallel_config)
                   .analyze(c.parsed.store, &c.parsed.jobs, c.scenario.begin,
                            c.scenario.end());
  }
  expect_results_equal(dark, serial);
  expect_results_equal(dark, parallel);

  // Worker threads recorded into the registry while the pools ran.
  std::uint64_t tasks_completed = 0;
  for (const auto& [name, value] : registry.counters()) {
    if (name == "hpcfail.pool.tasks_completed") tasks_completed = value;
  }
  EXPECT_GT(tasks_completed, 0u);
}

/// An empty (finalized) store analyzes to an all-empty result.
TEST(EngineTest, EmptyStoreYieldsEmptyResult) {
  const logmodel::LogStore store;
  const core::AnalysisEngine engine;
  const auto result = engine.analyze(store, nullptr, {}, {});
  EXPECT_TRUE(result.failures.empty());
  EXPECT_TRUE(result.lead_times.empty());
  EXPECT_TRUE(result.clusters.empty());
  EXPECT_EQ(result.breakdown.total, 0u);
  EXPECT_EQ(result.layers.hardware, 0.0);
  EXPECT_EQ(result.nvf.faults, 0u);
}

}  // namespace
}  // namespace hpcfail
