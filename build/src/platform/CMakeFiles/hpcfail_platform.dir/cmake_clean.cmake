file(REMOVE_RECURSE
  "CMakeFiles/hpcfail_platform.dir/cname.cpp.o"
  "CMakeFiles/hpcfail_platform.dir/cname.cpp.o.d"
  "CMakeFiles/hpcfail_platform.dir/system_config.cpp.o"
  "CMakeFiles/hpcfail_platform.dir/system_config.cpp.o.d"
  "CMakeFiles/hpcfail_platform.dir/topology.cpp.o"
  "CMakeFiles/hpcfail_platform.dir/topology.cpp.o.d"
  "libhpcfail_platform.a"
  "libhpcfail_platform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hpcfail_platform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
