// Fixed-size thread pool with a blocking task queue plus a chunked
// parallel_for.  The analysis pipeline shards work per day / per node and
// runs the shards here; determinism is preserved because shards never share
// mutable state and results are merged in index order.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace hpcfail::util {

class ThreadPool {
 public:
  /// `threads == 0` means hardware_concurrency (at least 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] std::size_t size() const noexcept { return workers_.size(); }

  /// Enqueues a task; the future resolves when it completes.
  template <typename F>
  [[nodiscard]] std::future<std::invoke_result_t<F>> submit(F&& fn) {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> result = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// Runs fn(i) for i in [0, n), blocking until all iterations finish.
  /// Work is split into contiguous chunks, one future per chunk.  Exceptions
  /// from any iteration propagate to the caller (first chunk wins); the call
  /// still joins every chunk before throwing, so `fn` is never referenced
  /// after return.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

  /// Runs fn(begin, end) over contiguous ranges covering [0, n).
  void parallel_for_ranges(std::size_t n,
                           const std::function<void(std::size_t, std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::deque<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stopping_ = false;
};

/// Process-wide default pool (lazily constructed, hardware concurrency).
[[nodiscard]] ThreadPool& default_pool();

}  // namespace hpcfail::util
