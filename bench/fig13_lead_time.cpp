// Fig 13: lead-time enhancement from external early indicators, S1-S4.
// Paper: mean lead times increase by about 5x when external faults (e.g.
// ec_hw_errors) are considered; 10-28% of node failures are enhanceable
// over 4 different weeks; for 72-90% (application-triggered failures) no
// external warnings exist and no enhancement is possible (Observation 5).
#include "bench_common.hpp"
#include "core/leadtime.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 13: lead-time enhancement (S1-S4, 4 weeks each)");

  util::TextTable table({"System", "failures", "enhanceable", "internal lead (min)",
                         "external lead (min)", "factor"});
  for (const auto sys : {platform::SystemName::S1, platform::SystemName::S2,
                         platform::SystemName::S3, platform::SystemName::S4}) {
    const auto p = bench::run_system(sys, 28, 1313);
    const core::LeadTimeAnalyzer analyzer(p.parsed.store);
    const auto summary = analyzer.summarize(p.failures);
    table.row()
        .cell(platform::to_string(sys))
        .cell(static_cast<std::int64_t>(summary.failures))
        .pct(summary.enhanceable_fraction())
        .cell(summary.internal_minutes_enh.mean(), 2)
        .cell(summary.external_minutes.mean(), 2)
        .cell(summary.enhancement_factor(), 2);

    const std::string label = platform::to_string(sys);
    check.in_range(label + ": enhanceable fraction (paper 10-28%)",
                   summary.enhanceable_fraction(), 0.08, 0.32);
    check.in_range(label + ": non-enhanceable fraction (paper 72-90%)",
                   1.0 - summary.enhanceable_fraction(), 0.68, 0.92);
    check.in_range(label + ": mean enhancement factor (paper ~5x)",
                   summary.enhancement_factor(), 3.0, 9.0);
  }
  std::cout << table.render() << '\n';

  // Per-cause view on S1: enhancement exists for fail-slow hardware and is
  // absent for application-triggered failures (the crux of Observation 5).
  {
    const auto p = bench::run_system(platform::SystemName::S1, 28, 1313);
    const core::LeadTimeAnalyzer analyzer(p.parsed.store);
    const auto lead_times = analyzer.lead_times(p.failures);
    std::array<std::size_t, logmodel::kRootCauseCount> total{}, enhanced{};
    for (const auto& lt : lead_times) {
      const auto cause =
          static_cast<std::size_t>(p.failures[lt.failure_index].inference.cause);
      ++total[cause];
      enhanced[cause] += lt.enhanceable();
    }
    util::TextTable per_cause({"cause", "failures", "enhanceable"});
    for (std::size_t c = 0; c < total.size(); ++c) {
      if (total[c] == 0) continue;
      per_cause.row()
          .cell(std::string(to_string(static_cast<logmodel::RootCause>(c))))
          .cell(static_cast<std::int64_t>(total[c]))
          .pct(static_cast<double>(enhanced[c]) / static_cast<double>(total[c]));
    }
    std::cout << per_cause.render() << '\n';

    const auto share = [&](logmodel::RootCause cause) {
      const auto c = static_cast<std::size_t>(cause);
      return total[c] ? static_cast<double>(enhanced[c]) / static_cast<double>(total[c])
                      : 0.0;
    };
    check.in_range("fail-slow failures are enhanceable (paper: these ARE the gains)",
                   share(logmodel::RootCause::FailSlowHardware), 0.75, 1.0);
    const std::size_t app_total =
        total[static_cast<std::size_t>(logmodel::RootCause::MemoryExhaustion)] +
        total[static_cast<std::size_t>(logmodel::RootCause::AppAbnormalExit)];
    const std::size_t app_enh =
        enhanced[static_cast<std::size_t>(logmodel::RootCause::MemoryExhaustion)] +
        enhanced[static_cast<std::size_t>(logmodel::RootCause::AppAbnormalExit)];
    check.in_range("application-triggered failures are NOT enhanceable (paper: "
                   "no early external indicators)",
                   app_total ? static_cast<double>(app_enh) /
                                   static_cast<double>(app_total)
                             : 0.0,
                   0.0, 0.05);
  }
  return check.exit_code();
}
