#include "logmodel/log_store.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hpcfail::logmodel {

namespace {
bool time_less(const LogRecord& a, const LogRecord& b) noexcept { return a.time < b.time; }
}  // namespace

LogStore::LogStore(std::vector<LogRecord> records, SymbolTable symbols)
    : records_(std::move(records)), symbols_(std::move(symbols)) {
  finalized_ = false;
  finalize();
}

LogStore LogStore::from_sorted(std::vector<LogRecord> records, SymbolTable symbols) {
  // A violated precondition here poisons every later binary search over
  // the time column, so it fails loud in every build — release included —
  // instead of an assert that vanishes under NDEBUG.
  const auto breach = std::is_sorted_until(records.begin(), records.end(), time_less);
  if (breach != records.end()) {
    throw std::logic_error(
        "LogStore::from_sorted: records are not time-ordered (record " +
        std::to_string(breach - records.begin()) + " moves backwards from " +
        std::to_string((breach - 1)->time.usec) + " to " +
        std::to_string(breach->time.usec) + " usec)");
  }
  LogStore store;
  store.records_ = std::move(records);
  store.symbols_ = std::move(symbols);
  store.build_indexes();
  store.finalized_ = true;
  return store;
}

void LogStore::add(LogRecord r) {
  finalized_ = false;
  records_.push_back(r);
}

void LogStore::finalize() {
  if (finalized_) return;
  std::stable_sort(records_.begin(), records_.end(), time_less);
  build_indexes();
  finalized_ = true;
}

void LogStore::build_indexes() {
  const std::size_t n = records_.size();

  times_.resize(n);
  types_.resize(n);

  // CSR build in three dense passes: (1) key ranges + type counts (fused
  // with the time/type column extraction — every pass over the 64-byte
  // records is real memory traffic), (2) per-key counts into
  // offsets[key + 1], (3) prefix-sum, then fill entries walking records in
  // order so every per-key run stays time-ordered.  Exact-sized flat
  // arrays, no per-key heap blocks.
  by_node_ = CsrIndex{};
  by_blade_ = CsrIndex{};
  by_cabinet_ = CsrIndex{};
  by_type_ = CsrIndex{};
  std::uint32_t node_keys = 0;
  std::uint32_t blade_keys = 0;
  std::uint32_t cabinet_keys = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const LogRecord& r = records_[i];
    times_[i] = r.time.usec;
    types_[i] = r.type;
    if (r.has_node()) node_keys = std::max(node_keys, r.node.value + 1);
    if (r.has_blade()) blade_keys = std::max(blade_keys, r.blade.value + 1);
    if (r.has_cabinet()) cabinet_keys = std::max(cabinet_keys, r.cabinet.value + 1);
  }
  if (node_keys != 0) by_node_.offsets.assign(std::size_t{node_keys} + 1, 0);
  if (blade_keys != 0) by_blade_.offsets.assign(std::size_t{blade_keys} + 1, 0);
  if (cabinet_keys != 0) by_cabinet_.offsets.assign(std::size_t{cabinet_keys} + 1, 0);
  if (n != 0) by_type_.offsets.assign(kEventTypeCount + 1, 0);

  // An empty offsets array implies no record carries that key, so the
  // guarded subscripts below are never reached for it.
  for (const LogRecord& r : records_) {
    if (r.has_node()) ++by_node_.offsets[r.node.value + 1];
    if (r.has_blade()) ++by_blade_.offsets[r.blade.value + 1];
    if (r.has_cabinet()) ++by_cabinet_.offsets[r.cabinet.value + 1];
    ++by_type_.offsets[static_cast<std::size_t>(r.type) + 1];
  }
  const auto prefix_sum = [](CsrIndex& idx) {
    for (std::size_t k = 1; k < idx.offsets.size(); ++k) idx.offsets[k] += idx.offsets[k - 1];
    idx.entries.resize(idx.offsets.empty() ? 0 : idx.offsets.back());
  };
  prefix_sum(by_node_);
  prefix_sum(by_blade_);
  prefix_sum(by_cabinet_);
  prefix_sum(by_type_);

  std::vector<std::uint32_t> node_cur = by_node_.offsets;
  std::vector<std::uint32_t> blade_cur = by_blade_.offsets;
  std::vector<std::uint32_t> cabinet_cur = by_cabinet_.offsets;
  std::vector<std::uint32_t> type_cur = by_type_.offsets;
  for (std::uint32_t i = 0; i < n; ++i) {
    const LogRecord& r = records_[i];
    if (r.has_node()) by_node_.entries[node_cur[r.node.value]++] = i;
    if (r.has_blade()) by_blade_.entries[blade_cur[r.blade.value]++] = i;
    if (r.has_cabinet()) by_cabinet_.entries[cabinet_cur[r.cabinet.value]++] = i;
    by_type_.entries[type_cur[static_cast<std::size_t>(r.type)]++] = i;
  }

  // Distinct node ids fall out of the offsets in ascending order for free.
  nodes_.clear();
  for (std::uint32_t k = 0; k < node_keys; ++k) {
    if (by_node_.offsets[k + 1] > by_node_.offsets[k]) nodes_.push_back(platform::NodeId{k});
  }
}

void LogStore::require_finalized() const {
  if (!finalized_) {
    throw std::logic_error(
        "LogStore: query on a non-finalized store (call finalize() after add(); "
        "records are unsorted and indexes stale until then)");
  }
}

util::TimePoint LogStore::first_time() const {
  require_finalized();
  return records_.empty() ? util::TimePoint{} : records_.front().time;
}

util::TimePoint LogStore::last_time() const {
  require_finalized();
  return records_.empty() ? util::TimePoint{} : records_.back().time;
}

std::span<const LogRecord> LogStore::range(util::TimePoint begin,
                                           util::TimePoint end) const {
  require_finalized();
  // Binary search the dense time column, not the ~48-byte record rows.
  const auto lo = std::lower_bound(times_.begin(), times_.end(), begin.usec);
  const auto hi = std::lower_bound(lo, times_.end(), end.usec);
  return {records_.data() + (lo - times_.begin()),
          static_cast<std::size_t>(hi - lo)};
}

std::span<const std::uint32_t> LogStore::filter_window(std::span<const std::uint32_t> index,
                                                       util::TimePoint begin,
                                                       util::TimePoint end) const {
  // The index is time-ordered because records_ is; binary search on it,
  // comparing through the contiguous time column.
  const auto lo = std::lower_bound(index.begin(), index.end(), begin.usec,
                                   [this](std::uint32_t i, std::int64_t t) {
                                     return times_[i] < t;
                                   });
  const auto hi = std::lower_bound(lo, index.end(), end.usec,
                                   [this](std::uint32_t i, std::int64_t t) {
                                     return times_[i] < t;
                                   });
  return {index.data() + (lo - index.begin()), static_cast<std::size_t>(hi - lo)};
}

std::span<const std::uint32_t> LogStore::node_range(platform::NodeId node,
                                                    util::TimePoint begin,
                                                    util::TimePoint end) const {
  require_finalized();
  return filter_window(by_node_.of(node.value), begin, end);
}

std::span<const std::uint32_t> LogStore::blade_range(platform::BladeId blade,
                                                     util::TimePoint begin,
                                                     util::TimePoint end) const {
  require_finalized();
  return filter_window(by_blade_.of(blade.value), begin, end);
}

std::span<const std::uint32_t> LogStore::cabinet_range(platform::CabinetId cabinet,
                                                       util::TimePoint begin,
                                                       util::TimePoint end) const {
  require_finalized();
  return filter_window(by_cabinet_.of(cabinet.value), begin, end);
}

std::span<const std::uint32_t> LogStore::type_range(EventType type, util::TimePoint begin,
                                                    util::TimePoint end) const {
  require_finalized();
  // CsrIndex::of bounds-checks the key, so the empty default-constructed
  // store needs no special case here.
  return filter_window(by_type_.of(static_cast<std::uint32_t>(type)), begin, end);
}

std::size_t LogStore::count_of_type(EventType type) const {
  require_finalized();
  return by_type_.of(static_cast<std::uint32_t>(type)).size();
}

std::span<const std::uint32_t> LogStore::node_index(platform::NodeId node) const {
  require_finalized();
  return by_node_.of(node.value);
}

std::span<const std::uint32_t> LogStore::type_index(EventType type) const {
  require_finalized();
  return by_type_.of(static_cast<std::uint32_t>(type));
}

const std::vector<platform::NodeId>& LogStore::nodes() const {
  require_finalized();
  return nodes_;
}

}  // namespace hpcfail::logmodel
