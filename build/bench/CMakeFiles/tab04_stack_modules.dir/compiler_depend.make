# Empty compiler generated dependencies file for tab04_stack_modules.
# This may be replaced when dependencies are built.
