// Shared harness for the figure/table reproduction benches.
//
// Every bench runs the full end-to-end path (simulate -> render raw text ->
// parse -> analyze), prints the paper's reported numbers next to the
// measured ones, and emits a shape verdict per claim:
//   PASS  measured inside the paper's reported range,
//   NEAR  within 25% (relative) of the nearest bound,
//   FAIL  otherwise.
// Exit code is 0 unless a claim FAILs, so `ctest`-style loops catch
// regressions in the reproduction itself.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "core/engine.hpp"
#include "core/root_cause.hpp"
#include "faultsim/simulator.hpp"
#include "loggen/corpus.hpp"
#include "parsers/corpus_parser.hpp"
#include "parsers/snapshot.hpp"
#include "util/metrics.hpp"
#include "util/table.hpp"
#include "util/trace.hpp"

namespace hpcfail::bench {

namespace detail {

/// Process-lifetime observability sinks for the benches.  The fig*/tab*
/// binaries have no flag parsing, so the sinks arm from the environment:
///   HPCFAIL_METRICS_OUT=metrics.json  HPCFAIL_TRACE_OUT=trace.json  ./fig03
/// Sinks accumulate across every run_pipeline call in the process and the
/// files are written once, during static destruction at exit.  With neither
/// variable set nothing is installed and the pipeline runs dark.
struct ObservabilitySinks {
  std::string metrics_path;
  std::string trace_path;
  util::MetricsRegistry registry;
  util::TraceRecorder recorder;

  ObservabilitySinks() {
    if (const char* p = std::getenv("HPCFAIL_METRICS_OUT")) metrics_path = p;
    if (const char* p = std::getenv("HPCFAIL_TRACE_OUT")) trace_path = p;
    if (!metrics_path.empty()) util::install_metrics(&registry);
    if (!trace_path.empty()) util::install_trace(&recorder);
  }
  ~ObservabilitySinks() {
    util::install_metrics(nullptr);
    util::install_trace(nullptr);
    if (!metrics_path.empty()) std::ofstream(metrics_path) << registry.to_json() << '\n';
    if (!trace_path.empty()) std::ofstream(trace_path) << recorder.to_chrome_json() << '\n';
  }
};

inline void observability_bootstrap() { static ObservabilitySinks sinks; }

}  // namespace detail

struct Pipeline {
  faultsim::SimulationResult sim;
  loggen::Corpus corpus;
  parsers::ParsedCorpus parsed;
  /// Full engine output over the scenario window (lead times, external
  /// correspondence, clusters, breakdowns, ...).
  core::AnalysisResult analysis;
  /// Convenience alias of analysis.failures — what most benches consume.
  std::vector<core::AnalyzedFailure> failures;
};

/// Runs the canonical path on an already-simulated system: render raw
/// text, parse it back, then one AnalysisEngine run over the scenario
/// window.  Benches that need non-default analysis knobs pass a config.
inline Pipeline run_pipeline(faultsim::SimulationResult sim,
                             const core::AnalysisConfig& config = {}) {
  detail::observability_bootstrap();
  Pipeline p{std::move(sim), {}, {}, {}, {}};
  {
    util::TraceSpan span("hpcfail.bench.render");
    p.corpus = loggen::build_corpus(p.sim);
  }
  {
    util::TraceSpan span("hpcfail.bench.parse");
    p.parsed = parsers::parse_corpus(p.corpus);
  }
  {
    util::TraceSpan span("hpcfail.bench.analyze");
    p.analysis = core::AnalysisEngine(config).analyze(
        p.parsed.store, &p.parsed.jobs, p.sim.config.begin, p.sim.config.end());
  }
  p.failures = p.analysis.failures;
  return p;
}

/// A persisted hpcfail.store.v1 snapshot as a pipeline source: skips
/// simulate/render/parse entirely and analyzes the loaded store over the
/// corpus window recorded in the snapshot.  `sim` and `corpus` stay empty,
/// so only benches that consume `parsed`/`analysis` can use this source.
struct SnapshotSource {
  std::string path;
};

inline Pipeline run_pipeline(const SnapshotSource& source,
                             const core::AnalysisConfig& config = {}) {
  detail::observability_bootstrap();
  Pipeline p{{}, {}, {}, {}, {}};
  {
    util::TraceSpan span("hpcfail.bench.snapshot_load");
    auto loaded = parsers::load_snapshot(source.path);
    if (!loaded.ok()) {
      std::cerr << "bench: snapshot load failed: " << loaded.error->to_string()
                << '\n';
      std::exit(1);
    }
    p.parsed = std::move(static_cast<parsers::ParsedCorpus&>(loaded));
  }
  {
    util::TraceSpan span("hpcfail.bench.analyze");
    const auto begin = p.parsed.begin;
    const auto end = begin + util::Duration::days(p.parsed.days);
    p.analysis =
        core::AnalysisEngine(config).analyze(p.parsed.store, &p.parsed.jobs, begin, end);
  }
  p.failures = p.analysis.failures;
  return p;
}

/// Runs the canonical path on a scenario.
inline Pipeline run_pipeline(faultsim::ScenarioConfig scenario,
                             const core::AnalysisConfig& config = {}) {
  detail::observability_bootstrap();
  auto sim = [&scenario] {
    util::TraceSpan span("hpcfail.bench.simulate");
    return faultsim::Simulator(std::move(scenario)).run();
  }();
  return run_pipeline(std::move(sim), config);
}

inline Pipeline run_system(platform::SystemName system, int days, std::uint64_t seed) {
  return run_pipeline(faultsim::scenario_preset(system, days, seed));
}

/// Collects claim verdicts and renders the final summary.
class ShapeCheck {
 public:
  explicit ShapeCheck(std::string experiment) : experiment_(std::move(experiment)) {
    std::cout << "==== " << experiment_ << " ====\n";
  }

  ~ShapeCheck() {
    std::cout << "---- " << experiment_ << ": " << passed_ << " PASS, " << near_
              << " NEAR, " << failed_ << " FAIL ----\n";
  }

  /// Claims measured lies in the paper's [lo, hi] (inclusive).
  void in_range(const std::string& claim, double measured, double lo, double hi) {
    const char* verdict;
    if (measured >= lo && measured <= hi) {
      verdict = "PASS";
      ++passed_;
    } else {
      const double bound = measured < lo ? lo : hi;
      const double rel =
          bound != 0.0 ? std::abs(measured - bound) / std::abs(bound) : std::abs(measured);
      if (rel <= 0.25) {
        verdict = "NEAR";
        ++near_;
      } else {
        verdict = "FAIL";
        ++failed_;
      }
    }
    std::printf("  [%s] %-58s measured %10.3f   paper [%g, %g]\n", verdict, claim.c_str(),
                measured, lo, hi);
  }

  /// Claims a >= b (ordering claims: "who wins").
  void greater(const std::string& claim, double a, double b) {
    const bool ok = a >= b;
    if (ok) {
      ++passed_;
    } else {
      ++failed_;
    }
    std::printf("  [%s] %-58s %.3f vs %.3f\n", ok ? "PASS" : "FAIL", claim.c_str(), a, b);
  }

  [[nodiscard]] int exit_code() const noexcept { return failed_ == 0 ? 0 : 1; }
  [[nodiscard]] int failures() const noexcept { return failed_; }

 private:
  std::string experiment_;
  int passed_ = 0;
  int near_ = 0;
  int failed_ = 0;
};

}  // namespace hpcfail::bench
