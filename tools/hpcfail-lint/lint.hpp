// hpcfail-lint: domain-specific consistency checker for the hpcfail repo.
//
// The synthetic-log pipeline is only trustworthy while three universes stay
// mutually consistent:
//   1. what the emitters can produce   (src/faultsim/chain_emitter.cpp via
//      src/loggen/renderer.cpp templates),
//   2. what the parsers can recover    (src/parsers/line_classifier.cpp,
//      src/parsers/source_parsers.cpp),
//   3. what the documentation promises (FORMATS.md).
// Each check statically cross-references two of these tables and emits
// file:line diagnostics when they drift, so the build fails before a golden
// test ever has to chase a silently-skipped log line.
//
// The checks are exposed individually (the fixture tests run them against
// deliberately drifted mini-trees) and collectively via run_checks().
#pragma once

#include <cstddef>
#include <filesystem>
#include <string>
#include <string_view>
#include <vector>

namespace hpcfail::lint {

struct Diagnostic {
  std::string file;     ///< path relative to the repo root
  std::size_t line;     ///< 1-based; 0 means "whole file"
  std::string check;    ///< check name, e.g. "erd-table"
  std::string message;

  /// "file:line: error: [check] message" (gcc-style, clickable in editors).
  [[nodiscard]] std::string to_string() const;
};

struct Report {
  std::vector<Diagnostic> diagnostics;

  [[nodiscard]] bool ok() const noexcept { return diagnostics.empty(); }
  void add(std::string file, std::size_t line, std::string check, std::string message);
};

/// ERD event-name table: renderer's erd_event_name() and the classifier's
/// erd_event_type() must be exact inverses (same names, same EventTypes).
void check_erd_tables(const std::filesystem::path& root, Report& report);

/// kEventNames in event_type.cpp must list exactly the EventType enumerators
/// of event_type.hpp, in declaration order (to_string indexes by value).
void check_event_names(const std::filesystem::path& root, Report& report);

/// Every payload template the renderer can emit per source (console,
/// controller) must have a matching classifier rule, and vice versa.
void check_payload_coverage(const std::filesystem::path& root, Report& report);

/// FORMATS.md tables must match the code: console signature table rows are
/// real EventTypes covered by renderer+classifier, and the documented ERD
/// event-name vocabulary equals the renderer's table.
void check_formats_doc(const std::filesystem::path& root, Report& report);

/// Corpus directory layout: the kFileNames table in src/loggen/corpus.cpp
/// (what write_corpus/ingest_files actually use on disk) must match the
/// file names documented in the FORMATS.md layout block, both directions.
void check_corpus_files(const std::filesystem::path& root, Report& report);

/// Repo invariants: no rand()/srand()/time(NULL)/std::random_device/mt19937
/// in src/ (simulation must be deterministic through util::Rng).  Suppress a
/// line with "hpcfail-lint: allow(banned-pattern)".
void check_banned_patterns(const std::filesystem::path& root, Report& report);

/// Header hygiene: every .hpp under src/ carries #pragma once near the top
/// and no header pollutes includers with `using namespace`.
void check_header_hygiene(const std::filesystem::path& root, Report& report);

/// Figure/table benches (bench/fig*.cpp, bench/tab*.cpp) must route their
/// analysis through bench::run_pipeline/run_system or core::AnalysisEngine —
/// never a private analyze_failures() wiring, which drifts from the shared
/// pipeline.  Suppress a file with "hpcfail-lint: allow(bench-pipeline)"
/// (for benches that do no failure analysis at all).
void check_bench_pipeline(const std::filesystem::path& root, Report& report);

/// Metric/span naming: every instrument name literal in src/, tools/ and
/// bench/ — registry calls (counter/gauge/histogram), TraceSpan/PhaseScope
/// constructions, and any string literal rooted at "hpcfail." — must follow
/// `hpcfail.<layer>.<snake_case>` (lowercase snake_case dot-segments, at
/// least two after the hpcfail root).  A literal completed at runtime
/// (followed by `+`) is validated as a prefix.  Suppress a line with
/// "hpcfail-lint: allow(metric-naming)".
void check_metric_naming(const std::filesystem::path& root, Report& report);

/// All known check names, in execution order.
[[nodiscard]] const std::vector<std::string>& all_check_names();

/// Runs the named checks (all of them when `checks` is empty) against the
/// repo rooted at `root`.  Unknown names produce a "usage" diagnostic.
[[nodiscard]] Report run_checks(const std::filesystem::path& root,
                                const std::vector<std::string>& checks = {});

}  // namespace hpcfail::lint
