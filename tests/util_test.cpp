// Unit and property tests for src/util: PRNG, time, strings, tables, pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <numeric>
#include <set>
#include <sstream>

#include "util/chunked_reader.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/time.hpp"

namespace hpcfail::util {
namespace {

// ---------------------------------------------------------------- rng ----

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.next_u64(), b.next_u64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.next_u64() == b.next_u64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, ForkIndependence) {
  Rng parent(7);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += c1.next_u64() == c2.next_u64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

class RngUniformIntBounds : public ::testing::TestWithParam<std::pair<std::int64_t, std::int64_t>> {};

TEST_P(RngUniformIntBounds, StaysInRange) {
  const auto [lo, hi] = GetParam();
  Rng rng(static_cast<std::uint64_t>(lo * 31 + hi));
  for (int i = 0; i < 5000; ++i) {
    const auto v = rng.uniform_int(lo, hi);
    ASSERT_GE(v, lo);
    ASSERT_LE(v, hi);
  }
}

INSTANTIATE_TEST_SUITE_P(Ranges, RngUniformIntBounds,
                         ::testing::Values(std::pair<std::int64_t, std::int64_t>{0, 0},
                                           std::pair<std::int64_t, std::int64_t>{0, 1},
                                           std::pair<std::int64_t, std::int64_t>{-5, 5},
                                           std::pair<std::int64_t, std::int64_t>{0, 6399},
                                           std::pair<std::int64_t, std::int64_t>{1, 257},
                                           std::pair<std::int64_t, std::int64_t>{-1000000,
                                                                                 1000000}));

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.uniform_int(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(17);
  double sum = 0, sum2 = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(2.0);
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(RngTest, PoissonMeanSmallAndLarge) {
  Rng rng(23);
  for (const double mean : {0.5, 4.0, 80.0}) {
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.poisson(mean));
    EXPECT_NEAR(sum / n, mean, mean * 0.05 + 0.05) << "mean=" << mean;
  }
}

TEST(RngTest, PoissonZeroAndNegative) {
  Rng rng(29);
  EXPECT_EQ(rng.poisson(0.0), 0);
  EXPECT_EQ(rng.poisson(-3.0), 0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(31);
  const std::vector<double> weights = {1.0, 0.0, 3.0};
  std::array<int, 3> counts{};
  for (int i = 0; i < 40000; ++i) {
    ++counts[rng.weighted_index(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, WeightedIndexNegativeWeightsIgnored) {
  Rng rng(37);
  const std::vector<double> weights = {-5.0, 1.0};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(rng.weighted_index(weights), 1u);
  }
}

TEST(RngTest, SampleIndicesDistinct) {
  Rng rng(41);
  const auto sample = rng.sample_indices(100, 30);
  ASSERT_EQ(sample.size(), 30u);
  const std::set<std::size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 30u);
  for (const auto i : sample) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesClampsK) {
  Rng rng(43);
  EXPECT_EQ(rng.sample_indices(5, 50).size(), 5u);
}

TEST(RngTest, WeibullPositive) {
  Rng rng(47);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GT(rng.weibull(0.7, 10.0), 0.0);
  }
}

// --------------------------------------------------------------- time ----

TEST(TimeTest, CivilRoundTripEpoch) {
  const CivilTime c = civil_time(TimePoint{0});
  EXPECT_EQ(c.year, 1970);
  EXPECT_EQ(c.month, 1);
  EXPECT_EQ(c.day, 1);
  EXPECT_EQ(c.hour, 0);
}

class CivilRoundTrip : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(CivilRoundTrip, DaysFromCivilInverse) {
  const auto [y, m, d] = GetParam();
  const std::int64_t days = days_from_civil(y, m, d);
  int yy = 0, mm = 0, dd = 0;
  civil_from_days(days, yy, mm, dd);
  EXPECT_EQ(yy, y);
  EXPECT_EQ(mm, m);
  EXPECT_EQ(dd, d);
}

INSTANTIATE_TEST_SUITE_P(
    Dates, CivilRoundTrip,
    ::testing::Values(std::tuple{1970, 1, 1}, std::tuple{2000, 2, 29}, std::tuple{2015, 3, 2},
                      std::tuple{2016, 12, 31}, std::tuple{2100, 2, 28},
                      std::tuple{1969, 12, 31}, std::tuple{2400, 2, 29}));

TEST(TimeTest, FormatParseIsoRoundTrip) {
  const TimePoint t = make_time(2015, 3, 2, 14, 5, 1, 123456);
  const std::string s = format_iso(t);
  EXPECT_EQ(s, "2015-03-02T14:05:01.123456");
  const auto parsed = parse_iso(s);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->usec, t.usec);
}

TEST(TimeTest, ParseIsoVariants) {
  EXPECT_TRUE(parse_iso("2015-03-02T14:05:01").has_value());
  EXPECT_TRUE(parse_iso("2015-03-02T14:05:01.5").has_value());
  EXPECT_TRUE(parse_iso("2015-03-02T14:05:01Z").has_value());
  EXPECT_TRUE(parse_iso("2015-03-02 14:05:01").has_value());
  EXPECT_FALSE(parse_iso("2015-03-02").has_value());
  EXPECT_FALSE(parse_iso("garbage").has_value());
  EXPECT_FALSE(parse_iso("2015-13-02T14:05:01").has_value());
  EXPECT_FALSE(parse_iso("2015-03-02T25:05:01").has_value());
  EXPECT_FALSE(parse_iso("2015-03-02T14:05:01.").has_value());
  EXPECT_FALSE(parse_iso("2015-03-02T14:05:01xyz").has_value());
}

TEST(TimeTest, SyslogRoundTrip) {
  const TimePoint t = make_time(2015, 3, 2, 14, 5, 1);
  const std::string s = format_syslog(t);
  EXPECT_EQ(s, "Mar  2 14:05:01");
  const auto parsed = parse_syslog(s, 2015);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->usec, t.usec);
}

TEST(TimeTest, SyslogTwoDigitDay) {
  const TimePoint t = make_time(2015, 11, 25, 3, 4, 5);
  const auto parsed = parse_syslog(format_syslog(t), 2015);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->usec, t.usec);
}

TEST(TimeTest, SqlRoundTrip) {
  const TimePoint t = make_time(2016, 6, 30, 23, 59, 59);
  const auto parsed = parse_sql(format_sql(t));
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->usec, t.usec);
}

TEST(TimeTest, DayIndexAndHour) {
  const TimePoint t = make_time(1970, 1, 2, 13, 0, 0);
  EXPECT_EQ(t.day_index(), 1);
  EXPECT_EQ(t.hour_of_day(), 13);
  const TimePoint before_epoch = make_time(1969, 12, 31, 23, 0, 0);
  EXPECT_EQ(before_epoch.day_index(), -1);
  EXPECT_EQ(before_epoch.hour_of_day(), 23);
}

TEST(TimeTest, DurationArithmetic) {
  EXPECT_EQ(Duration::minutes(2).to_seconds(), 120.0);
  EXPECT_EQ((Duration::hours(1) + Duration::minutes(30)).to_minutes(), 90.0);
  const TimePoint t{1000000};
  EXPECT_EQ((t + Duration::seconds(2) - t).usec, 2000000);
}

TEST(TimeTest, FormatDuration) {
  EXPECT_EQ(format_duration(Duration::seconds(45)), "45.0 s");
  EXPECT_EQ(format_duration(Duration::minutes(5)), "5.0 min");
  EXPECT_EQ(format_duration(Duration::hours(3)), "3.0 h");
  EXPECT_EQ(format_duration(-Duration::minutes(5)), "-5.0 min");
}

TEST(TimeTest, SyslogYearRollover) {
  // Window starting Dec 2014: December lines stay in 2014, calendar-earlier
  // months roll into 2015.
  const auto dec = parse_syslog("Dec 31 23:59:58", 2014, 12);
  ASSERT_TRUE(dec.has_value());
  EXPECT_EQ(civil_time(*dec).year, 2014);
  const auto jan = parse_syslog("Jan  1 00:00:03", 2014, 12);
  ASSERT_TRUE(jan.has_value());
  EXPECT_EQ(civil_time(*jan).year, 2015);
  EXPECT_LT(dec->usec, jan->usec);
  // A window that never crosses New Year is untouched by the base month.
  const auto mar = parse_syslog("Mar  2 14:05:01", 2015, 2);
  ASSERT_TRUE(mar.has_value());
  EXPECT_EQ(civil_time(*mar).year, 2015);
}

TEST(TimeTest, SyslogYearRolloverLeapDay) {
  // "Feb 29" does not exist in 2015; the plain parse normalizes it to
  // Mar 1 (Hinnant extrapolation), and the Dec-window rollover reparse
  // then recovers the true leap day in 2016.
  const auto leap = parse_syslog("Feb 29 12:00:00", 2015, 12);
  ASSERT_TRUE(leap.has_value());
  const auto c = civil_time(*leap);
  EXPECT_EQ(c.year, 2016);
  EXPECT_EQ(c.month, 2);
  EXPECT_EQ(c.day, 29);
  // Without a crossed New Year the normalized date stands.
  const auto plain = parse_syslog("Feb 29 12:00:00", 2015, 1);
  ASSERT_TRUE(plain.has_value());
  EXPECT_EQ(civil_time(*plain).month, 3);
  EXPECT_EQ(civil_time(*plain).day, 1);
}

// ------------------------------------------------------------ strings ----

TEST(StringsTest, TrimAndSplit) {
  EXPECT_EQ(trim("  a b \t\n"), "a b");
  EXPECT_EQ(trim(""), "");
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  const auto ws = split_ws("  a \t b  c ");
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_EQ(ws[1], "b");
}

TEST(StringsTest, SplitN) {
  const auto parts = split_n("a:b:c:d", ':', 2);
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[1], "b:c:d");
}

TEST(StringsTest, ParseNumbers) {
  EXPECT_EQ(parse_i64("  -42 "), -42);
  EXPECT_EQ(parse_u64("42"), 42u);
  EXPECT_FALSE(parse_i64("4x").has_value());
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_DOUBLE_EQ(parse_double("3.5").value(), 3.5);
  EXPECT_FALSE(parse_double("3.5z").has_value());
}

TEST(StringsTest, FindKv) {
  const std::string_view line = "sched: Allocate JobId=42 NodeList=nid[00001-00003,00007] X=1";
  EXPECT_EQ(find_kv(line, "JobId"), "42");
  EXPECT_EQ(find_kv(line, "NodeList"), "nid[00001-00003,00007]");
  EXPECT_EQ(find_kv(line, "X"), "1");
  EXPECT_FALSE(find_kv(line, "Missing").has_value());
  // Key must sit on a token boundary: "Id" must not match inside "JobId".
  EXPECT_FALSE(find_kv("JobId=42", "Id").has_value());
}

TEST(StringsTest, ToLowerIsLocaleFreeAscii) {
  EXPECT_EQ(to_lower("Machine Check EDAC"), "machine check edac");
  EXPECT_EQ(to_lower("already lower 123 :/-"), "already lower 123 :/-");
  // Non-ASCII bytes pass through untouched regardless of the global
  // locale: 'İ' in Latin-1/UTF-8 must not be remapped the way a locale-
  // aware tolower might.
  std::string high;
  for (int c = 128; c < 256; ++c) high += static_cast<char>(c);
  EXPECT_EQ(to_lower(high), high);
  // Full ASCII table: exactly 'A'..'Z' change, by +0x20.
  for (int c = 0; c < 128; ++c) {
    const std::string s(1, static_cast<char>(c));
    const char want = (c >= 'A' && c <= 'Z') ? static_cast<char>(c + 32)
                                             : static_cast<char>(c);
    EXPECT_EQ(to_lower(s), std::string(1, want)) << c;
  }
}

TEST(StringsTest, ExtractBetween) {
  EXPECT_EQ(extract_between("a [b] c", "[", "]"), "b");
  EXPECT_FALSE(extract_between("a [b c", "[", "]").has_value());
}

TEST(StringsTest, StripPrefix) {
  EXPECT_EQ(strip_prefix("nid00042", "nid"), "00042");
  EXPECT_FALSE(strip_prefix("node42", "nid").has_value());
}

TEST(StringsTest, SplitLinesDropsEmptyAndHandlesMissingFinalNewline) {
  const auto lines = split_lines("a\n\nbb\nccc");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "bb");
  EXPECT_EQ(lines[2], "ccc");
  EXPECT_TRUE(split_lines("").empty());
  EXPECT_TRUE(split_lines("\n\n").empty());
}

TEST(StringsTest, SplitLinesStripsCarriageReturns) {
  // CRLF corpora: the '\r' belongs to the terminator, not the payload.
  const auto lines = split_lines("a\r\nbb\r\n\r\nc\r");
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_EQ(lines[0], "a");
  EXPECT_EQ(lines[1], "bb");
  EXPECT_EQ(lines[2], "c");
  // Only a single trailing '\r' is the terminator; interior ones stay.
  const auto inner = split_lines("a\rb\r\n");
  ASSERT_EQ(inner.size(), 1u);
  EXPECT_EQ(inner[0], "a\rb");
}

// ----------------------------------------------------- chunked reader ----

TEST(ChunkedReaderTest, ReassemblesExactlyAndNeverSplitsALine) {
  std::string text;
  for (int i = 0; i < 200; ++i) {
    text += "line number " + std::to_string(i) + " with some padding\n";
  }
  for (const std::size_t chunk_bytes : {std::size_t{1}, std::size_t{7},
                                        std::size_t{64}, std::size_t{1} << 20}) {
    std::istringstream in(text);
    ChunkedLineReader reader(in, chunk_bytes);
    std::string reassembled;
    std::string chunk;
    std::size_t chunks = 0;
    while (reader.next(chunk)) {
      ASSERT_FALSE(chunk.empty());
      // Line-boundary invariant: every chunk ends on a terminator.
      ASSERT_EQ(chunk.back(), '\n') << "chunk_bytes=" << chunk_bytes;
      reassembled += chunk;
      ++chunks;
    }
    EXPECT_EQ(reassembled, text) << "chunk_bytes=" << chunk_bytes;
    EXPECT_EQ(reader.bytes_read(), text.size());
    if (chunk_bytes >= text.size()) {
      EXPECT_EQ(chunks, 1u);
    }
  }
}

TEST(ChunkedReaderTest, MissingFinalNewlineIsDelivered) {
  std::istringstream in("aaa\nbbb\nccc");
  ChunkedLineReader reader(in, 4);
  std::string reassembled;
  std::string chunk;
  while (reader.next(chunk)) reassembled += chunk;
  EXPECT_EQ(reassembled, "aaa\nbbb\nccc");
}

TEST(ChunkedReaderTest, EmptyStreamYieldsNothing) {
  std::istringstream in("");
  ChunkedLineReader reader(in, 1024);
  std::string chunk;
  EXPECT_FALSE(reader.next(chunk));
  EXPECT_FALSE(reader.next(chunk));  // stays done
  EXPECT_EQ(reader.bytes_read(), 0u);
}

TEST(ChunkedReaderTest, SingleMultiMegabyteLineRefillsInLinearTime) {
  // Regression: the refill loop used to rescan the whole chunk from offset
  // 0 on every iteration looking for a '\n', so one line of L bytes read in
  // C-byte chunks cost O(L²/C).  With L = 8 MB and C = 1 KB that is ~32 GB
  // of rescanning — minutes, not milliseconds.  The refill now remembers
  // how far it has scanned, so this completes quickly; the generous bound
  // only trips if the quadratic rescan comes back.
  const std::string longline(8u << 20, 'x');
  std::istringstream in(longline + "\n");
  ChunkedLineReader reader(in, 1024);
  const auto start = std::chrono::steady_clock::now();
  std::string chunk;
  ASSERT_TRUE(reader.next(chunk));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_EQ(chunk.size(), longline.size() + 1);
  EXPECT_EQ(chunk.back(), '\n');
  EXPECT_EQ(chunk.compare(0, longline.size(), longline), 0);
  EXPECT_FALSE(reader.next(chunk));
  EXPECT_LT(std::chrono::duration_cast<std::chrono::seconds>(elapsed).count(), 10);
}

TEST(ChunkedReaderTest, LineLongerThanChunkGrowsTheChunk) {
  const std::string longline(10'000, 'x');
  std::istringstream in(longline + "\nshort\n");
  ChunkedLineReader reader(in, 16);
  std::string chunk;
  ASSERT_TRUE(reader.next(chunk));
  // The first chunk must contain the whole long line, unsplit.
  ASSERT_GE(chunk.size(), longline.size() + 1);
  EXPECT_EQ(chunk.substr(0, longline.size()), longline);
  EXPECT_EQ(chunk[longline.size()], '\n');
  std::string reassembled = chunk;
  while (reader.next(chunk)) reassembled += chunk;
  EXPECT_EQ(reassembled, longline + "\nshort\n");
}

// -------------------------------------------------------------- table ----

TEST(TableTest, RenderAligned) {
  TextTable t({"a", "bb"});
  t.row().cell("xxx").cell(static_cast<std::int64_t>(7));
  t.row().pct(0.5).cell(1.25, 1);
  const std::string out = t.render();
  EXPECT_NE(out.find("50.00%"), std::string::npos);
  EXPECT_NE(out.find("1.2"), std::string::npos);
  // Column 1 starts at the same offset on every line.
  const auto lines = split(out, '\n');
  ASSERT_GE(lines.size(), 4u);
  const auto header_bb = lines[0].find("bb");
  ASSERT_NE(header_bb, std::string_view::npos);
  EXPECT_EQ(lines[2].find('7'), header_bb);
  EXPECT_EQ(lines[3].find("1.2"), header_bb);
}

TEST(TableTest, CsvQuoting) {
  TextTable t({"x"});
  t.add_row({"a,b"});
  t.add_row({"say \"hi\""});
  const std::string csv = t.render_csv();
  EXPECT_NE(csv.find("\"a,b\""), std::string::npos);
  EXPECT_NE(csv.find("\"say \"\"hi\"\"\""), std::string::npos);
}

// --------------------------------------------------------- thread pool ----

TEST(ThreadPoolTest, ParallelForCoversAllIndexes) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(1000, [&hits](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) {
    EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ParallelForEmpty) {
  ThreadPool pool(2);
  pool.parallel_for(0, [](std::size_t) { FAIL(); });
}

TEST(ThreadPoolTest, RangesPartitionExactly) {
  ThreadPool pool(3);
  std::atomic<std::size_t> total{0};
  pool.parallel_for_ranges(777, [&total](std::size_t b, std::size_t e) {
    total.fetch_add(e - b);
  });
  EXPECT_EQ(total.load(), 777u);
}

}  // namespace
}  // namespace hpcfail::util
