# Empty dependencies file for hpcfail_util.
# This may be replaced when dependencies are built.
