// Fig 17: memory over-allocation day.  Paper: 53 failures occur over just
// 16 jobs; Slurm allocated more memory than the nodes had; for jobs J5 and
// J8 every overallocated node fails, for J4/J15 only a few do; J1 and J16
// had 1 and 6 failures for 600 and 683 overallocated nodes; when any
// overallocated node fails the job dies and must be re-allocated.
#include "bench_common.hpp"
#include "core/job_analysis.hpp"
#include "faultsim/special_scenarios.hpp"

int main() {
  using namespace hpcfail;
  bench::ShapeCheck check("Fig 17: over-allocation day (16 jobs)");

  const auto p = bench::run_pipeline(faultsim::overallocation_day(1717));
  const auto& parsed = p.parsed;
  const auto& failures = p.failures;

  const core::JobAnalyzer analyzer(parsed.jobs, failures);
  const auto rows = analyzer.overallocation_report();

  util::TextTable table({"Job", "allocated", "overallocated", "failed"});
  std::size_t total_failures = 0;
  std::size_t all_fail_jobs = 0;
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto& r = rows[i];
    table.row()
        .cell("J" + std::to_string(i + 1))
        .cell(static_cast<std::int64_t>(r.allocated))
        .cell(static_cast<std::int64_t>(r.overallocated))
        .cell(static_cast<std::int64_t>(r.failed));
    total_failures += r.failed;
    if (r.overallocated > 0 && r.failed == r.overallocated) ++all_fail_jobs;
  }
  std::cout << table.render() << '\n';

  check.in_range("jobs on the over-allocation day (paper 16)",
                 static_cast<double>(rows.size()), 16, 16);
  check.in_range("total failures (paper 53)", static_cast<double>(total_failures), 50, 56);
  check.in_range("jobs losing ALL overallocated nodes (paper: J5, J8)",
                 static_cast<double>(all_fail_jobs), 2, 2);
  if (rows.size() >= 16) {
    check.in_range("J1 failures for 600 overallocated (paper 1)",
                   static_cast<double>(rows[0].failed), 1, 1);
    check.in_range("J1 overallocated nodes (paper 600)",
                   static_cast<double>(rows[0].overallocated), 600, 600);
    check.in_range("J16 failures for 683 overallocated (paper 6)",
                   static_cast<double>(rows[15].failed), 6, 6);
    check.in_range("J16 overallocated nodes (paper 683)",
                   static_cast<double>(rows[15].overallocated), 683, 683);
  }
  // Every job with a failure dies (memory-killed) and needs re-allocation.
  std::size_t failed_jobs_dead = 0, failed_jobs = 0;
  for (const auto& job : parsed.jobs.jobs()) {
    bool has_failure = false;
    for (const auto& f : failures) {
      if (f.event.job_id == job.job_id) has_failure = true;
    }
    if (!has_failure) continue;
    ++failed_jobs;
    if (job.exit_code != 0) ++failed_jobs_dead;
  }
  check.greater("every job with failed nodes dies",
                static_cast<double>(failed_jobs_dead) + 0.001,
                static_cast<double>(failed_jobs));
  return check.exit_code();
}
