#include "core/markdown_report.hpp"

#include <sstream>

#include "core/advisor.hpp"
#include "core/engine.hpp"
#include "core/temporal.hpp"
#include "core/timeline.hpp"
#include "stats/ecdf.hpp"
#include "util/table.hpp"

namespace hpcfail::core {

std::string markdown_report(const ReportInputs& inputs) {
  std::ostringstream out;
  const auto& store = *inputs.store;
  const auto window_days = (inputs.end - inputs.begin).usec / util::Duration::days(1).usec;

  out << "# Node-failure report — " << inputs.system_label << "\n\n";
  out << "Window: " << util::format_iso(inputs.begin) << " to "
      << util::format_iso(inputs.end) << " (" << window_days << " days), "
      << store.size() << " parsed records";
  if (inputs.jobs != nullptr) out << ", " << inputs.jobs->size() << " jobs";
  out << ".\n\n";

  // --- one engine run produces every section's numbers ---
  const AnalysisEngine engine;
  const AnalysisResult analysis = engine.analyze(store, inputs.jobs, inputs.begin,
                                                 inputs.end);
  const auto& failures = analysis.failures;
  const auto& breakdown = analysis.breakdown;
  out << "## Failures and root causes\n\n";
  out << failures.size() << " node failures diagnosed.\n\n";
  out << "| Root cause | Count | Share |\n|---|---|---|\n";
  for (std::size_t i = 0; i < breakdown.counts.size(); ++i) {
    if (breakdown.counts[i] == 0) continue;
    const auto cause = static_cast<logmodel::RootCause>(i);
    out << "| " << to_string(cause) << " | " << breakdown.counts[i] << " | "
        << util::fmt_pct(breakdown.share(cause)) << " |\n";
  }
  const auto& shares = analysis.layers;
  out << "\nLayer shares: hardware " << util::fmt_pct(shares.hardware) << ", software "
      << util::fmt_pct(shares.software) << ", application "
      << util::fmt_pct(shares.application) << "; application-triggered origin "
      << util::fmt_pct(shares.application_triggered) << ".\n\n";

  // --- temporal structure ---
  const TemporalAnalyzer temporal(failures);
  const auto gaps = temporal.inter_failure_minutes(inputs.begin, inputs.end);
  out << "## Temporal structure\n\n";
  if (!gaps.empty()) {
    const stats::Ecdf ecdf{gaps};
    out << "Inter-failure gaps: median " << util::fmt_double(ecdf.quantile(0.5), 1)
        << " min; " << util::fmt_pct(ecdf.fraction_at_or_below(16.0))
        << " within 16 min (bursty).\n";
  }
  const auto days = temporal.dominant_cause_per_day(inputs.begin,
                                                    static_cast<int>(window_days));
  stats::StreamingStats dom;
  for (const auto& d : days) dom.add(d.dominant_share());
  if (dom.count() > 0) {
    out << "On failure days, " << util::fmt_pct(dom.mean())
        << " of failures share the day's dominant cause on average.\n";
  }
  const auto& cluster_summary = analysis.cluster_summary;
  if (cluster_summary.clusters > 0) {
    out << "Failures form " << cluster_summary.clusters << " clusters (mean size "
        << util::fmt_double(cluster_summary.mean_size, 1) << ", max "
        << util::fmt_double(cluster_summary.max_size, 0) << "); "
        << util::fmt_pct(cluster_summary.same_cause_fraction)
        << " of multi-failure clusters share one cause";
    if (cluster_summary.shared_job_multi_blade_fraction > 0) {
      out << ", and " << util::fmt_pct(cluster_summary.shared_job_multi_blade_fraction)
          << " of shared-job clusters span multiple blades";
    }
    out << ".\n";
  }
  out << '\n';

  // --- external correlation & lead times ---
  const auto& nvf = analysis.nvf;
  const auto& nhf = analysis.nhf;
  out << "## External indicators\n\n";
  out << "- NVFs: " << nvf.faults << " observed, " << util::fmt_pct(nvf.fraction())
      << " correspond to failures.\n";
  out << "- NHFs: " << nhf.faults << " observed, " << util::fmt_pct(nhf.fraction())
      << " correspond to failures.\n";
  const auto& lt = analysis.lead_time_summary;
  out << "- Lead times: " << util::fmt_pct(lt.enhanceable_fraction())
      << " of failures enhanceable via external indicators";
  if (lt.enhanceable > 0) {
    out << " (mean " << util::fmt_double(lt.internal_minutes_enh.mean(), 1) << " min -> "
        << util::fmt_double(lt.external_minutes.mean(), 1) << " min, factor "
        << util::fmt_double(lt.enhancement_factor(), 1) << "x)";
  }
  out << ".\n\n";

  // --- availability ---
  if (inputs.topology != nullptr) {
    const TimelineBuilder builder(store, inputs.topology->node_count());
    const auto fleet = builder.fleet_availability(inputs.begin, inputs.end);
    out << "## Fleet availability\n\n";
    out << util::fmt_pct(fleet.availability, 3) << " availability, "
        << util::fmt_double(fleet.node_hours_lost, 1) << " node-hours lost across "
        << fleet.down_intervals << " down intervals";
    if (fleet.repair_minutes.count() > 0) {
      out << " (mean repair " << util::fmt_double(fleet.repair_minutes.mean(), 0)
          << " min)";
    }
    out << ".\n\n";
  }

  // --- recommended actions ---
  const MitigationAdvisor advisor;
  const auto recommendations = advisor.advise(failures, inputs.jobs);
  const auto actions = summarize_actions(recommendations, failures);
  out << "## Recommended actions\n\n";
  out << "| Action | Failures |\n|---|---|\n";
  for (std::size_t a = 0; a < actions.counts.size(); ++a) {
    if (actions.counts[a] == 0) continue;
    out << "| " << to_string(static_cast<Action>(a)) << " | " << actions.counts[a]
        << " |\n";
  }
  out << "\nQuarantining every failed node would have wasted capacity on "
      << util::fmt_pct(actions.quarantine_waste_fraction)
      << " of failures (application-triggered).\n";
  return out.str();
}

}  // namespace hpcfail::core
