// Emits the structured event chains of each failure mechanism and the
// benign event populations.
//
// Each root cause has a characteristic propagation chain (Sections III-E/F):
//
//   HardwareMce       HW error -> MCE -> [CPU corruption] -> panic -> NHF
//   FailSlowHardware  ec_hw_errors/link errors/NVF (external, minutes-to-
//                     hours early) -> HW error -> MCE -> panic -> NHF
//   KernelBug         invalid opcode / CPU stall -> oops(+trace) -> panic
//   LustreBug         Lustre errors -> LBUG -> oops(dvs/ldlm trace) -> halt
//   MemoryExhaustion  page-alloc failures -> oom-kill -> oops(xpmem/dvs
//                     trace) -> NHC admindown
//   AppAbnormalExit   NHC test failures -> abnormal app exit -> admindown
//   BiosUnknown       "type:2;severity:80" error -> shutdown (no cause)
//   L0SysdMceUnknown  L0_sysd_mce -> shutdown (no cause)
//   OperatorError     bare shutdown
//
// The benign emitters produce the fault populations that do NOT lead to
// failures (Section III-C): power-off/skipped-heartbeat NHFs, SEDC warning
// storms, cabinet chatter, per-node error bursts and hung-task storms.
#pragma once

#include <vector>

#include "faultsim/ground_truth.hpp"
#include "faultsim/scenario.hpp"
#include "jobs/job.hpp"
#include "logmodel/record.hpp"
#include "logmodel/symbol_table.hpp"
#include "platform/topology.hpp"
#include "util/rng.hpp"

namespace hpcfail::faultsim {

class ChainEmitter {
 public:
  /// Detail strings of every emitted record are interned into `symbols`,
  /// which must outlive the emitted records (the simulator stores it next
  /// to them in SimulationResult).
  ChainEmitter(const platform::Topology& topo, const FailureProcessConfig& config,
               std::vector<logmodel::LogRecord>& out, logmodel::SymbolTable& symbols,
               GroundTruth& truth, util::Rng& rng);

  /// Plants a failure chain; `job` may be nullptr for non-job causes.
  /// Returns the recorded ground-truth entry.
  const PlantedFailure& plant_failure(platform::NodeId node, util::TimePoint fail_time,
                                      logmodel::RootCause cause, const jobs::Job* job);

  // --- benign populations (no failure planted) ---
  void emit_benign_nhf(platform::NodeId node, util::TimePoint t, bool power_off);
  void emit_benign_nvf(platform::NodeId node, util::TimePoint t);
  void emit_sedc_warning(platform::BladeId blade, util::TimePoint t,
                         logmodel::EventType warning, double value);
  void emit_cabinet_fault(platform::CabinetId cabinet, util::TimePoint t);
  /// Burst of non-failing node errors of the given internal type
  /// (HardwareError / MachineCheckException / LustreError).
  void emit_benign_node_errors(platform::NodeId node, util::TimePoint t,
                               logmodel::EventType type);
  void emit_hung_task(platform::NodeId node, util::TimePoint t);
  void emit_background_ec_hw_error(platform::BladeId blade, util::TimePoint t);
  /// Non-failing oom-killer invocation with an app-flavoured call trace
  /// (institutional-cluster pattern; Fig 15).
  void emit_benign_oom(platform::NodeId node, util::TimePoint t);
  /// Non-failing software error (segfault or page-allocation fault).
  void emit_benign_sw_error(platform::NodeId node, util::TimePoint t);
  /// Non-failing hardware-error -> MCE look-alike episode; when
  /// `with_external` a blade ec_hw_error accompanies it (Fig 14's healthy
  /// look-alikes).
  void emit_multi_error_episode(platform::NodeId node, util::TimePoint t, bool with_external);

  /// HSN lane degrade on a blade; when `failover_ok` the traffic re-routes
  /// cleanly, otherwise interconnect errors surface on the blade's nodes.
  void emit_lane_degrade(platform::BladeId blade, util::TimePoint t, bool failover_ok);

  /// Intended (maintenance) shutdown of one node: shutdown marker whose
  /// reason text identifies it as scheduled, plus the later reboot.  The
  /// failure detector must exclude these.
  void emit_intended_shutdown(platform::NodeId node, util::TimePoint t,
                              util::Duration downtime);

  /// System-wide outage: file-system incident plus near-simultaneous
  /// shutdowns of `nodes`; recorded in the benign ledger, not as failures.
  void emit_swo(const std::vector<platform::NodeId>& nodes, util::TimePoint t);

  // --- scheduler events ---
  void emit_job_records(const jobs::Job& job);

 private:
  logmodel::LogRecord base(util::TimePoint t, logmodel::LogSource src,
                           logmodel::EventType type, logmodel::Severity sev,
                           platform::NodeId node) const;
  logmodel::LogRecord blade_event(util::TimePoint t, logmodel::LogSource src,
                                  logmodel::EventType type, logmodel::Severity sev,
                                  platform::BladeId blade) const;
  void push(logmodel::LogRecord r) { out_.push_back(r); }
  [[nodiscard]] logmodel::Symbol sym(std::string_view text) { return symbols_.intern(text); }

  /// Emits a kernel oops with `frames` call-trace lines; the first frame's
  /// module is returned (the "preliminary calltrace" of Table IV).
  std::string emit_oops_with_trace(platform::NodeId node, util::TimePoint t,
                                   std::vector<std::string_view> modules,
                                   std::int64_t job_id);

  util::Duration minutes_jitter(double lo, double hi);

  const platform::Topology& topo_;
  const FailureProcessConfig& config_;
  std::vector<logmodel::LogRecord>& out_;
  logmodel::SymbolTable& symbols_;
  GroundTruth& truth_;
  util::Rng& rng_;
};

}  // namespace hpcfail::faultsim
