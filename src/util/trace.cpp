#include "util/trace.hpp"

#include <algorithm>
#include <cctype>
#include <chrono>
#include <sstream>
#include <thread>

namespace hpcfail::util {

namespace {

std::atomic<TraceRecorder*> g_trace{nullptr};

std::int64_t steady_ns() noexcept {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

TraceRecorder::TraceRecorder() : epoch_ns_(steady_ns()) {}

std::int64_t TraceRecorder::now_us() const noexcept {
  return (steady_ns() - epoch_ns_) / 1000;
}

void TraceRecorder::record(std::string name, std::int64_t ts_us, std::int64_t dur_us) {
  const std::uint64_t hash = std::hash<std::thread::id>{}(std::this_thread::get_id());
  std::lock_guard lock(mutex_);
  std::uint32_t tid = 0;
  bool found = false;
  for (const auto& [h, id] : thread_ids_) {
    if (h == hash) {
      tid = id;
      found = true;
      break;
    }
  }
  if (!found) {
    tid = static_cast<std::uint32_t>(thread_ids_.size());
    thread_ids_.emplace_back(hash, tid);
  }
  TraceEvent e;
  e.name = std::move(name);
  e.tid = tid;
  e.ts_us = std::max<std::int64_t>(0, ts_us);
  e.dur_us = std::max<std::int64_t>(0, dur_us);
  events_.push_back(std::move(e));
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::lock_guard lock(mutex_);
  return events_;
}

std::string TraceRecorder::to_chrome_json() const {
  std::vector<TraceEvent> sorted = events();
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
                     if (a.tid != b.tid) return a.tid < b.tid;
                     return a.dur_us > b.dur_us;  // parents before children
                   });
  std::ostringstream out;
  out << "{\"traceEvents\":[";
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const TraceEvent& e = sorted[i];
    if (i) out << ',';
    out << "{\"name\":\"";
    for (const char c : e.name) {
      if (c == '"' || c == '\\') out << '\\';
      out << c;
    }
    out << "\",\"cat\":\"hpcfail\",\"ph\":\"X\",\"ts\":" << e.ts_us
        << ",\"dur\":" << e.dur_us << ",\"pid\":1,\"tid\":" << e.tid << '}';
  }
  out << "]}";
  return out.str();
}

void install_trace(TraceRecorder* recorder) noexcept {
  g_trace.store(recorder, std::memory_order_release);
}

TraceRecorder* trace() noexcept { return g_trace.load(std::memory_order_acquire); }

std::string trace_name_segment(std::string_view raw) {
  std::string out;
  out.reserve(raw.size());
  for (const char c : raw) {
    const auto u = static_cast<unsigned char>(c);
    if (std::isalnum(u) != 0) {
      out.push_back(static_cast<char>(std::tolower(u)));
    } else {
      out.push_back('_');
    }
  }
  if (out.empty()) out = "unnamed";
  return out;
}

}  // namespace hpcfail::util
