#include "faultsim/scenario_io.hpp"

#include <functional>
#include <new>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "util/fault.hpp"
#include "util/strings.hpp"

namespace hpcfail::faultsim {

namespace {

struct DoubleKey {
  const char* name;
  std::function<double(const ScenarioConfig&)> get;  ///< dump path (const)
  std::function<double&(ScenarioConfig&)> set;       ///< parse path
};

/// Builds both sides of a DoubleKey from one generic field accessor, so each
/// knob is still spelled once and the dump path needs no const_cast.
template <typename Accessor>
DoubleKey make_key(const char* name, Accessor field) {
  return {name, [field](const ScenarioConfig& c) -> double { return field(c); },
          [field](ScenarioConfig& c) -> double& { return field(c); }};
}

/// Single registry of every double-valued knob; drives dump and parse.
const std::vector<DoubleKey>& double_keys() {
  static const std::vector<DoubleKey> keys = {
      make_key("failures.failure_day_fraction",
       [](auto& c) -> auto& { return c.failures.failure_day_fraction; }),
      make_key("failures.extra_bursts_mean",
       [](auto& c) -> auto& { return c.failures.extra_bursts_mean; }),
      make_key("failures.dominant_burst_mean",
       [](auto& c) -> auto& { return c.failures.dominant_burst_mean; }),
      make_key("failures.burst_spread_minutes",
       [](auto& c) -> auto& { return c.failures.burst_spread_minutes; }),
      make_key("failures.isolated_failures_per_day",
       [](auto& c) -> auto& { return c.failures.isolated_failures_per_day; }),
      make_key("failures.external_lead_min_minutes",
       [](auto& c) -> auto& { return c.failures.external_lead_min_minutes; }),
      make_key("failures.external_lead_max_minutes",
       [](auto& c) -> auto& { return c.failures.external_lead_max_minutes; }),
      make_key("failures.internal_lead_min_minutes",
       [](auto& c) -> auto& { return c.failures.internal_lead_min_minutes; }),
      make_key("failures.internal_lead_max_minutes",
       [](auto& c) -> auto& { return c.failures.internal_lead_max_minutes; }),
      make_key("failures.blade_fault_near_failure_p",
       [](auto& c) -> auto& { return c.failures.blade_fault_near_failure_p; }),
      make_key("failures.cabinet_fault_near_failure_p",
       [](auto& c) -> auto& { return c.failures.cabinet_fault_near_failure_p; }),
      make_key("failures.hw_burst_same_blade_p",
       [](auto& c) -> auto& { return c.failures.hw_burst_same_blade_p; }),
      make_key("benign.benign_nhf_per_day",
       [](auto& c) -> auto& { return c.benign.benign_nhf_per_day; }),
      make_key("benign.nhf_power_off_fraction",
       [](auto& c) -> auto& { return c.benign.nhf_power_off_fraction; }),
      make_key("benign.benign_nvf_per_month",
       [](auto& c) -> auto& { return c.benign.benign_nvf_per_month; }),
      make_key("benign.deviant_blade_fraction",
       [](auto& c) -> auto& { return c.benign.deviant_blade_fraction; }),
      make_key("benign.sedc_sample_interval_minutes",
       [](auto& c) -> auto& { return c.benign.sedc_sample_interval_minutes; }),
      make_key("benign.transient_sedc_warnings_per_day",
       [](auto& c) -> auto& { return c.benign.transient_sedc_warnings_per_day; }),
      make_key("benign.cabinet_faults_per_day",
       [](auto& c) -> auto& { return c.benign.cabinet_faults_per_day; }),
      make_key("benign.benign_hw_error_nodes_per_day",
       [](auto& c) -> auto& { return c.benign.benign_hw_error_nodes_per_day; }),
      make_key("benign.benign_mce_nodes_per_day",
       [](auto& c) -> auto& { return c.benign.benign_mce_nodes_per_day; }),
      make_key("benign.benign_lustre_nodes_per_day",
       [](auto& c) -> auto& { return c.benign.benign_lustre_nodes_per_day; }),
      make_key("benign.benign_oom_nodes_per_day",
       [](auto& c) -> auto& { return c.benign.benign_oom_nodes_per_day; }),
      make_key("benign.benign_sw_error_nodes_per_day",
       [](auto& c) -> auto& { return c.benign.benign_sw_error_nodes_per_day; }),
      make_key("benign.multi_error_episode_nodes_per_day",
       [](auto& c) -> auto& {
         return c.benign.multi_error_episode_nodes_per_day;
       }),
      make_key("benign.multi_error_external_fraction",
       [](auto& c) -> auto& { return c.benign.multi_error_external_fraction; }),
      make_key("benign.background_ec_hw_errors_per_day",
       [](auto& c) -> auto& { return c.benign.background_ec_hw_errors_per_day; }),
      make_key("benign.hung_task_nodes_per_day",
       [](auto& c) -> auto& { return c.benign.hung_task_nodes_per_day; }),
      make_key("benign.maintenance_windows_per_month",
       [](auto& c) -> auto& { return c.benign.maintenance_windows_per_month; }),
      make_key("benign.swo_per_month",
       [](auto& c) -> auto& { return c.benign.swo_per_month; }),
      make_key("benign.swo_node_fraction",
       [](auto& c) -> auto& { return c.benign.swo_node_fraction; }),
      make_key("benign.routine_chatter_lines_per_day",
       [](auto& c) -> auto& { return c.benign.routine_chatter_lines_per_day; }),
      make_key("benign.lane_degrades_per_day",
       [](auto& c) -> auto& { return c.benign.lane_degrades_per_day; }),
      make_key("benign.failover_failure_fraction",
       [](auto& c) -> auto& { return c.benign.failover_failure_fraction; }),
      make_key("sensors.reading_interval_minutes",
       [](auto& c) -> auto& { return c.sensors.reading_interval_minutes; }),
      make_key("workload.arrivals_per_hour",
       [](auto& c) -> auto& { return c.workload.arrivals_per_hour; }),
      make_key("workload.duration_lognorm_mu",
       [](auto& c) -> auto& { return c.workload.duration_lognorm_mu; }),
      make_key("workload.duration_lognorm_sigma",
       [](auto& c) -> auto& { return c.workload.duration_lognorm_sigma; }),
      make_key("workload.blade_packed_fraction",
       [](auto& c) -> auto& { return c.workload.blade_packed_fraction; }),
  };
  return keys;
}

std::optional<platform::SystemName> system_from_label(std::string_view label) {
  for (const auto name : {platform::SystemName::S1, platform::SystemName::S2,
                          platform::SystemName::S3, platform::SystemName::S4,
                          platform::SystemName::S5}) {
    if (platform::to_string(name) == label) return name;
  }
  return std::nullopt;
}

}  // namespace

std::string scenario_to_string(const ScenarioConfig& config) {
  if (HPCFAIL_FAULT_SITE("faultsim.scenario_io.bad_alloc")) throw std::bad_alloc{};
  std::ostringstream out;
  out << "# hpcfail scenario\n";
  out << "system = " << platform::to_string(config.system.name) << '\n';
  out << "days = " << config.days << '\n';
  out << "seed = " << config.seed << '\n';
  out << "begin = " << util::format_iso(config.begin) << '\n';
  out << "enable_jobs = " << (config.enable_jobs ? 1 : 0) << '\n';
  out << "sensors.emit_readings = " << (config.sensors.emit_readings ? 1 : 0) << '\n';
  out << "sensors.reading_blade_count = " << config.sensors.reading_blade_count << '\n';
  const auto& topo = config.system.topology;
  out << "topology.cabinet_cols = " << topo.cabinet_cols << '\n'
      << "topology.cabinet_rows = " << topo.cabinet_rows << '\n'
      << "topology.chassis_per_cabinet = " << topo.chassis_per_cabinet << '\n'
      << "topology.slots_per_chassis = " << topo.slots_per_chassis << '\n'
      << "topology.nodes_per_slot = " << topo.nodes_per_slot << '\n'
      << "topology.max_nodes = " << topo.max_nodes << '\n';

  for (const auto& key : double_keys()) {
    out << key.name << " = " << key.get(config) << '\n';
  }
  for (std::size_t i = 0; i < logmodel::kRootCauseCount; ++i) {
    const double w = config.failures.cause_weights[i];
    if (w > 0.0) {
      out << "cause_weights." << to_string(static_cast<logmodel::RootCause>(i)) << " = "
          << w << '\n';
    }
  }
  return out.str();
}

void apply_scenario_overrides(ScenarioConfig& config, const std::string& text) {
  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = util::trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) {
      throw std::runtime_error("scenario: malformed line: " + std::string(line));
    }
    const auto key = util::trim(line.substr(0, eq));
    const auto value = util::trim(line.substr(eq + 1));
    auto bad_value = [&] {
      return std::runtime_error("scenario: bad value for " + std::string(key) + ": " +
                                std::string(value));
    };

    if (key == "system") {
      const auto name = system_from_label(value);
      if (!name) throw bad_value();
      config.system = platform::system_preset(*name);
      continue;
    }
    if (key == "days") {
      const auto v = util::parse_i64(value);
      if (!v || *v <= 0) throw bad_value();
      config.days = static_cast<int>(*v);
      continue;
    }
    if (key == "seed") {
      const auto v = util::parse_u64(value);
      if (!v) throw bad_value();
      config.seed = *v;
      continue;
    }
    if (key == "begin") {
      const auto t = util::parse_iso(value);
      if (!t) throw bad_value();
      config.begin = *t;
      continue;
    }
    if (key == "enable_jobs") {
      config.enable_jobs = value != "0";
      continue;
    }
    if (key == "sensors.emit_readings") {
      config.sensors.emit_readings = value != "0";
      continue;
    }
    if (key == "sensors.reading_blade_count") {
      const auto v = util::parse_u64(value);
      if (!v) throw bad_value();
      config.sensors.reading_blade_count = static_cast<std::uint32_t>(*v);
      continue;
    }
    if (key == "sensors.force_power_off_node") {
      const auto v = util::parse_i64(value);
      if (!v) throw bad_value();
      config.sensors.force_power_off_node = *v;
      continue;
    }
    // Topology overrides let users shrink the machine (tests, fixtures).
    if (const auto field = util::strip_prefix(key, "topology.")) {
      const auto v = util::parse_i64(value);
      if (!v || *v < 0) throw bad_value();
      auto& topo = config.system.topology;
      if (*field == "cabinet_cols") {
        topo.cabinet_cols = static_cast<int>(*v);
      } else if (*field == "cabinet_rows") {
        topo.cabinet_rows = static_cast<int>(*v);
      } else if (*field == "chassis_per_cabinet") {
        topo.chassis_per_cabinet = static_cast<int>(*v);
      } else if (*field == "slots_per_chassis") {
        topo.slots_per_chassis = static_cast<int>(*v);
      } else if (*field == "nodes_per_slot") {
        topo.nodes_per_slot = static_cast<int>(*v);
      } else if (*field == "max_nodes") {
        topo.max_nodes = static_cast<std::uint32_t>(*v);
      } else {
        throw std::runtime_error("scenario: unknown key: " + std::string(key));
      }
      config.system.nodes = platform::Topology(topo).node_count();
      continue;
    }
    if (const auto cause_name = util::strip_prefix(key, "cause_weights.")) {
      bool found = false;
      for (std::size_t i = 0; i < logmodel::kRootCauseCount; ++i) {
        if (to_string(static_cast<logmodel::RootCause>(i)) == *cause_name) {
          const auto v = util::parse_double(value);
          if (!v || *v < 0.0) throw bad_value();
          config.failures.cause_weights[i] = *v;
          found = true;
          break;
        }
      }
      if (!found) {
        throw std::runtime_error("scenario: unknown cause: " + std::string(*cause_name));
      }
      continue;
    }

    bool matched = false;
    for (const auto& dk : double_keys()) {
      if (key == dk.name) {
        const auto v = util::parse_double(value);
        if (!v) throw bad_value();
        dk.set(config) = *v;
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw std::runtime_error("scenario: unknown key: " + std::string(key));
    }
  }
}

ScenarioConfig scenario_from_string(const std::string& text) {
  // First pass: find the system/days/seed so the preset is right before
  // overrides land on top.
  platform::SystemName system = platform::SystemName::S1;
  bool system_seen = false;
  int days = 7;
  std::uint64_t seed = 42;
  for (const auto raw_line : util::split(text, '\n')) {
    const auto line = util::trim(raw_line);
    const auto eq = line.find('=');
    if (eq == std::string_view::npos) continue;
    const auto key = util::trim(line.substr(0, eq));
    const auto value = util::trim(line.substr(eq + 1));
    if (key == "system") {
      const auto name = system_from_label(value);
      if (name) {
        system = *name;
        system_seen = true;
      }
    } else if (key == "days") {
      days = static_cast<int>(util::parse_i64(value).value_or(days));
    } else if (key == "seed") {
      seed = util::parse_u64(value).value_or(seed);
    }
  }
  if (!system_seen) throw std::runtime_error("scenario: missing 'system = S1..S5'");
  ScenarioConfig config = scenario_preset(system, days, seed);
  apply_scenario_overrides(config, text);
  return config;
}

}  // namespace hpcfail::faultsim
