// Unit and property tests for src/jobs: catalog, allocator, workload,
// job table.
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "jobs/allocator.hpp"
#include "jobs/app_catalog.hpp"
#include "jobs/job_table.hpp"
#include "jobs/workload.hpp"
#include "platform/system_config.hpp"

namespace hpcfail::jobs {
namespace {

platform::Topology small_topology() {
  platform::TopologyConfig cfg;
  cfg.cabinet_cols = 2;
  return platform::Topology(cfg);  // 384 nodes
}

// -------------------------------------------------------------- catalog ----

TEST(AppCatalogTest, SamplingRespectsPopularity) {
  const AppCatalog catalog = AppCatalog::standard();
  util::Rng rng(1);
  std::map<std::string, int> counts;
  for (int i = 0; i < 20000; ++i) counts[catalog.sample(rng).name]++;
  // namd (popularity 10) must dominate devcode_x (popularity 1).
  EXPECT_GT(counts["namd"], counts["devcode_x"] * 4);
  EXPECT_GT(counts["devcode_x"], 0);
}

TEST(AppCatalogTest, FindByName) {
  const AppCatalog catalog = AppCatalog::standard();
  ASSERT_NE(catalog.find("genomics_mem"), nullptr);
  EXPECT_GT(catalog.find("genomics_mem")->p_oom, 0.01);
  EXPECT_EQ(catalog.find("nonexistent"), nullptr);
}

TEST(AppCatalogTest, EmptyCatalogRejected) {
  EXPECT_THROW(AppCatalog(std::vector<AppProfile>{}), std::invalid_argument);
}

// ------------------------------------------------------------ allocator ----

TEST(AllocatorTest, NoDoubleBookingWithinWindow) {
  const auto topo = small_topology();
  NodeAllocator alloc(topo);
  util::Rng rng(2);
  const util::TimePoint t0 = util::make_time(2015, 1, 1);
  const util::TimePoint t1 = t0 + util::Duration::hours(1);

  std::set<std::uint32_t> used;
  for (int j = 0; j < 10; ++j) {
    const auto nodes = alloc.allocate(30, t0, t1, AllocPolicy::Scattered, rng);
    ASSERT_EQ(nodes.size(), 30u);
    for (const auto n : nodes) {
      EXPECT_TRUE(used.insert(n.value).second) << "node double-booked";
    }
  }
  // 384 - 300 = 84 left; a request for 100 must fail entirely.
  EXPECT_TRUE(alloc.allocate(100, t0, t1, AllocPolicy::Scattered, rng).empty());
  // But succeeds after the old jobs end.
  EXPECT_EQ(alloc.allocate(100, t1, t1 + util::Duration::hours(1), AllocPolicy::Scattered,
                           rng)
                .size(),
            100u);
}

TEST(AllocatorTest, BladePackedIsContiguous) {
  const auto topo = small_topology();
  NodeAllocator alloc(topo);
  util::Rng rng(3);
  const util::TimePoint t0 = util::make_time(2015, 1, 1);
  const auto nodes =
      alloc.allocate(16, t0, t0 + util::Duration::hours(1), AllocPolicy::BladePacked, rng);
  ASSERT_EQ(nodes.size(), 16u);
  std::set<std::uint32_t> blades;
  for (const auto n : nodes) blades.insert(topo.blade_of(n).value);
  // 16 nodes over 4-node blades: exactly 4 whole blades.
  EXPECT_EQ(blades.size(), 4u);
}

TEST(AllocatorTest, ReleaseFreesEarly) {
  const auto topo = small_topology();
  NodeAllocator alloc(topo);
  util::Rng rng(4);
  const util::TimePoint t0 = util::make_time(2015, 1, 1);
  const util::TimePoint t1 = t0 + util::Duration::hours(10);
  const auto nodes = alloc.allocate(topo.node_count(), t0, t1, AllocPolicy::Scattered, rng);
  ASSERT_EQ(nodes.size(), topo.node_count());
  EXPECT_EQ(alloc.free_count(t0 + util::Duration::hours(1)), 0u);
  alloc.release(nodes[0], t0 + util::Duration::hours(1));
  EXPECT_EQ(alloc.free_count(t0 + util::Duration::hours(1)), 1u);
}

TEST(AllocatorTest, ImpossibleRequests) {
  const auto topo = small_topology();
  NodeAllocator alloc(topo);
  util::Rng rng(5);
  const util::TimePoint t0 = util::make_time(2015, 1, 1);
  EXPECT_TRUE(alloc.allocate(0, t0, t0, AllocPolicy::Scattered, rng).empty());
  EXPECT_TRUE(
      alloc.allocate(topo.node_count() + 1, t0, t0, AllocPolicy::Scattered, rng).empty());
}

// ------------------------------------------------------------- workload ----

TEST(WorkloadTest, DeterministicAndOrdered) {
  const auto topo = small_topology();
  WorkloadConfig cfg;
  cfg.arrivals_per_hour = 30;
  const util::TimePoint begin = util::make_time(2015, 3, 2);
  const util::TimePoint end = begin + util::Duration::days(2);

  WorkloadGenerator g1(topo, AppCatalog::standard(), cfg, util::Rng(77));
  WorkloadGenerator g2(topo, AppCatalog::standard(), cfg, util::Rng(77));
  const auto jobs1 = g1.generate(begin, end);
  const auto jobs2 = g2.generate(begin, end);
  ASSERT_EQ(jobs1.size(), jobs2.size());
  ASSERT_GT(jobs1.size(), 100u);
  for (std::size_t i = 0; i < jobs1.size(); ++i) {
    EXPECT_EQ(jobs1[i].job_id, jobs2[i].job_id);
    EXPECT_EQ(jobs1[i].start.usec, jobs2[i].start.usec);
    EXPECT_EQ(jobs1[i].nodes.size(), jobs2[i].nodes.size());
    if (i > 0) {
      EXPECT_GE(jobs1[i].start.usec, jobs1[i - 1].start.usec);
    }
  }
}

TEST(WorkloadTest, JobsWithinWindowAndValid) {
  const auto topo = small_topology();
  WorkloadGenerator gen(topo, AppCatalog::standard(), WorkloadConfig{}, util::Rng(78));
  const util::TimePoint begin = util::make_time(2015, 3, 2);
  const util::TimePoint end = begin + util::Duration::days(1);
  for (const auto& job : gen.generate(begin, end)) {
    EXPECT_GE(job.start.usec, begin.usec);
    EXPECT_LT(job.start.usec, end.usec);
    EXPECT_GT(job.end.usec, job.start.usec);
    EXPECT_FALSE(job.nodes.empty());
    EXPECT_GT(job.mem_per_node_gb, 0.0);
    for (const auto n : job.nodes) EXPECT_LT(n.value, topo.node_count());
  }
}

TEST(WorkloadTest, NoNodeOverlapAmongConcurrentJobs) {
  const auto topo = small_topology();
  WorkloadGenerator gen(topo, AppCatalog::standard(), WorkloadConfig{}, util::Rng(79));
  const util::TimePoint begin = util::make_time(2015, 3, 2);
  const auto jobs = gen.generate(begin, begin + util::Duration::days(1));
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    for (std::size_t j = i + 1; j < jobs.size(); ++j) {
      const bool overlap_time =
          jobs[i].start < jobs[j].end && jobs[j].start < jobs[i].end;
      if (!overlap_time) continue;
      std::set<std::uint32_t> a;
      for (const auto n : jobs[i].nodes) a.insert(n.value);
      for (const auto n : jobs[j].nodes) {
        EXPECT_FALSE(a.contains(n.value))
            << "jobs " << jobs[i].job_id << " and " << jobs[j].job_id << " share a node";
      }
    }
  }
}

TEST(JobOutcomeTest, ExitCodes) {
  EXPECT_EQ(exit_code_for(JobOutcome::Completed), 0);
  EXPECT_EQ(exit_code_for(JobOutcome::UserCancelled), 130);
  EXPECT_EQ(exit_code_for(JobOutcome::OomKilled), 137);
  EXPECT_EQ(exit_code_for(JobOutcome::NodeFailure), 143);
  EXPECT_NE(to_string(JobOutcome::ConfigError), "?");
}

// ------------------------------------------------------------ job table ----

TEST(JobTableTest, FromJobsAndQueries) {
  Job job;
  job.job_id = 42;
  job.app_name = "namd";
  job.start = util::make_time(2015, 3, 2, 10);
  job.end = util::make_time(2015, 3, 2, 12);
  job.nodes = {platform::NodeId{1}, platform::NodeId{2}};
  job.outcome = JobOutcome::Completed;
  const JobTable table = JobTable::from_jobs({job});

  ASSERT_NE(table.find(42), nullptr);
  EXPECT_EQ(table.find(42)->app_name, "namd");
  EXPECT_EQ(table.find(43), nullptr);

  const auto* on_node =
      table.job_on_node_at(platform::NodeId{1}, util::make_time(2015, 3, 2, 11));
  ASSERT_NE(on_node, nullptr);
  EXPECT_EQ(on_node->job_id, 42);
  EXPECT_EQ(table.job_on_node_at(platform::NodeId{3}, util::make_time(2015, 3, 2, 11)),
            nullptr);
  // Outside the window, but within slack.
  EXPECT_EQ(table.job_on_node_at(platform::NodeId{1}, util::make_time(2015, 3, 2, 12, 1)),
            nullptr);
  EXPECT_NE(table.job_on_node_at(platform::NodeId{1}, util::make_time(2015, 3, 2, 12, 1),
                                 util::Duration::minutes(5)),
            nullptr);
  EXPECT_EQ(table.running_at(util::make_time(2015, 3, 2, 11)).size(), 1u);
  EXPECT_TRUE(table.running_at(util::make_time(2015, 3, 2, 13)).empty());
}

TEST(JobTableTest, IncrementalConstruction) {
  JobTable table;
  JobInfo info;
  info.job_id = 7;
  info.start = util::make_time(2015, 1, 1);
  info.end = info.start + util::Duration::days(9999);
  info.nodes = {platform::NodeId{5}};
  table.add_start(std::move(info));
  table.add_end(7, util::make_time(2015, 1, 1, 2), 137, "OomKilled");
  table.mark_overallocated(7, 3);
  table.mark_cancelled(8);  // unknown id: ignored
  table.finalize();

  const auto* job = table.find(7);
  ASSERT_NE(job, nullptr);
  EXPECT_TRUE(job->ended);
  EXPECT_EQ(job->exit_code, 137);
  EXPECT_EQ(job->end_reason, "OomKilled");
  EXPECT_TRUE(job->overallocated);
  EXPECT_EQ(job->overallocated_nodes, 3u);
  EXPECT_FALSE(job->cancelled);
}

TEST(JobTableTest, AddStartReplacesDuplicate) {
  JobTable table;
  JobInfo a;
  a.job_id = 1;
  a.app_name = "first";
  table.add_start(a);
  JobInfo b;
  b.job_id = 1;
  b.app_name = "second";
  table.add_start(b);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.find(1)->app_name, "second");
}

}  // namespace
}  // namespace hpcfail::jobs
